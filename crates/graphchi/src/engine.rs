use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mlvc_core::{
    Engine, EngineConfig, InitActive, RunReport, SuperstepStats, Update, VertexCtx, VertexProgram,
};
use mlvc_graph::{Csr, IntervalId, VertexIntervals, VertexId};
use mlvc_log::BitSet;
use mlvc_ssd::{DeviceError, Ssd};

use crate::shards::{ShardRecord, ShardSet};

/// The GraphChi baseline engine: parallel sliding windows over shards,
/// synchronous (BSP) message delivery via edge values.
///
/// Two corner cases of on-edge delivery are handled with small in-memory
/// stashes so that no update is ever lost (results must match MultiLogVC
/// exactly for the comparison to be meaningful):
///
/// * an edge still carrying last superstep's undelivered value is about to
///   be overwritten by this superstep's message and the destination's
///   interval has not been processed yet → the old value moves to the
///   destination interval's *pending delivery* list for this superstep;
/// * two messages traverse the same edge in one superstep (random walks do
///   this) → with a `combine` they merge; otherwise the older value moves
///   to the *next* superstep's pending list.
///
/// Graph structural updates are not supported by this baseline (none of
/// the paper's evaluation applications mutate the graph).
pub struct GraphChiEngine {
    ssd: Arc<Ssd>,
    shards: ShardSet,
    cfg: EngineConfig,
    states: Vec<u64>,
}

struct BlockImage {
    shard: IntervalId,
    first_page: u64,
    records: Vec<ShardRecord>,
}

impl GraphChiEngine {
    /// Shard `graph` under `intervals` and build the engine.
    pub fn new(
        ssd: Arc<Ssd>,
        graph: &Csr,
        intervals: VertexIntervals,
        cfg: EngineConfig,
    ) -> Result<Self, DeviceError> {
        let shards = ShardSet::build(&ssd, graph, intervals, "gchi")?;
        let states = vec![0u64; graph.num_vertices()];
        Ok(GraphChiEngine { ssd, shards, cfg: cfg.validated(), states })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The superstep driver; a device fault aborts the run and surfaces as
    /// `RunReport::interrupted`.
    fn drive(
        &mut self,
        prog: &dyn VertexProgram,
        max_supersteps: usize,
        report: &mut RunReport,
    ) -> Result<(), DeviceError> {
        assert!(
            !prog.needs_weights(),
            "GraphChi baseline models edge values as message slots; weighted programs unsupported"
        );
        let intervals = self.shards.intervals().clone();
        let n = intervals.num_vertices();
        let ni = intervals.num_intervals();
        let combine = prog.combine();

        self.states = (0..n as VertexId).map(|v| prog.init_state(v)).collect();

        let mut active = BitSet::new(n);
        let mut all_active = false;
        // Deliveries scheduled for the current superstep, per interval.
        let mut pending: Vec<Vec<Update>> = vec![Vec::new(); ni];
        match prog.init_active(n) {
            InitActive::All => all_active = true,
            InitActive::Seeds(seeds) => {
                for u in seeds {
                    active.set(u.dest as usize);
                    pending[intervals.interval_of(u.dest) as usize].push(u);
                }
            }
        }

        for superstep in 1..=max_supersteps {
            let any_active = all_active || active.count() > 0;
            if !any_active {
                report.converged = true;
                break;
            }
            let wall0 = Instant::now();
            let io0 = self.ssd.stats().snapshot();
            let mut st = SuperstepStats { superstep, ..Default::default() };
            let mut next_active = BitSet::new(n);
            let mut next_pending: Vec<Vec<Update>> = vec![Vec::new(); ni];
            let mut sends_total = 0u64;

            for i in intervals.iter_ids() {
                let iv = intervals.range(i);
                // Active vertices of this interval, ascending.
                let actives: Vec<VertexId> = if all_active {
                    iv.clone().collect()
                } else {
                    iv.clone().filter(|&v| active.get(v as usize)).collect()
                };
                if actives.is_empty() && pending[i as usize].is_empty() {
                    continue; // the only case GraphChi skips a shard (§II-A)
                }

                // --- Load shard i fully + the interval's out-edge blocks
                //     from every other shard (parallel sliding windows). ---
                let shard_records = self.shards.load_shard(i)?;
                #[allow(unused_mut)]
                let mut images: Vec<BlockImage> = Vec::new();
                for j in intervals.iter_ids() {
                    if j == i {
                        continue;
                    }
                    let (lo, hi) = self.shards.block(j, i);
                    if lo >= hi {
                        continue;
                    }
                    let (records, first_page) = self.shards.load_range(j, lo, hi)?;
                    images.push(BlockImage { shard: j, first_page, records });
                }

                // --- Messages: fresh edge values + pending deliveries. ---
                let mut msgs: Vec<Update> = shard_records
                    .iter()
                    .filter(|r| r.tag as usize == superstep - 1 && r.tag != 0)
                    .map(|r| Update::new(r.dst, r.src, r.data))
                    .collect();
                // Seeds use tag semantics of "delivered at superstep 1".
                msgs.append(&mut pending[i as usize]);
                msgs.sort_by_key(|u| (u.dest, u.src));
                let mut groups: HashMap<VertexId, std::ops::Range<usize>> = HashMap::new();
                {
                    let mut k = 0usize;
                    while k < msgs.len() {
                        let d = msgs[k].dest;
                        let start = k;
                        while k < msgs.len() && msgs[k].dest == d {
                            k += 1;
                        }
                        groups.insert(d, start..k);
                    }
                }

                // Vertices to process: active ∪ message receivers.
                let mut process_list: Vec<VertexId> = actives;
                for &d in groups.keys() {
                    if !process_list.contains(&d) {
                        process_list.push(d);
                    }
                }
                process_list.sort_unstable();

                // --- Out-edge gather: merge-join each sorted block with the
                //     process list; also index record positions for sends. ---
                // Image index 0 = the shard itself (for dst within interval i).
                let mut out_edges: HashMap<VertexId, Vec<(VertexId, usize, usize)>> =
                    process_list.iter().map(|&v| (v, Vec::new())).collect();
                {
                    // Own shard's block (i, i).
                    let (lo, hi) = self.shards.block(i, i);
                    for (k, r) in shard_records[lo..hi].iter().enumerate() {
                        if let Some(list) = out_edges.get_mut(&r.src) {
                            list.push((r.dst, usize::MAX, lo + k));
                        }
                    }
                    for (img_idx, img) in images.iter().enumerate() {
                        let (lo, _hi) = self.shards.block(img.shard, i);
                        let per_page = self.ssd.page_size() / crate::SHARD_RECORD_BYTES;
                        let img_base = (img.first_page as usize) * per_page;
                        let start_in_img = lo - img_base;
                        let count = self.shards.block(img.shard, i).1 - lo;
                        for (k, r) in img.records[start_in_img..start_in_img + count]
                            .iter()
                            .enumerate()
                        {
                            if let Some(list) = out_edges.get_mut(&r.src) {
                                list.push((r.dst, img_idx, start_in_img + k));
                            }
                        }
                    }
                }

                // --- Parallel vertex processing. ---
                let states = &self.states;
                let seed = self.cfg.seed;
                let work: Vec<(VertexId, &[Update], Vec<VertexId>)> = process_list
                    .iter()
                    .map(|&v| {
                        let m: &[Update] =
                            groups.get(&v).map(|r| &msgs[r.clone()]).unwrap_or(&[]);
                        let edges: Vec<VertexId> =
                            out_edges[&v].iter().map(|&(d, _, _)| d).collect();
                        (v, m, edges)
                    })
                    .collect();
                let combined: Vec<Option<Update>> = work
                    .iter()
                    .map(|(v, m, _)| {
                        combine.and_then(|f| {
                            m.iter()
                                .map(|u| u.data)
                                .reduce(f)
                                .map(|data| Update::new(*v, VertexId::MAX, data))
                        })
                    })
                    .collect();
                for ((_, m, _), comb) in work.iter().zip(&combined) {
                    st.messages_delivered += match comb {
                        Some(_) => 1,
                        None => m.len() as u64,
                    };
                }
                let outputs: Vec<_> =
                    mlvc_par::par_map2(&work, &combined, |(v, m, edges), comb| {
                        let msgs_view: &[Update] = match comb {
                            Some(u) => std::slice::from_ref(u),
                            None => m,
                        };
                        let mut ctx = VertexCtx::new(
                            *v,
                            superstep,
                            n,
                            states[*v as usize],
                            msgs_view,
                            edges,
                            None,
                            seed,
                        );
                        prog.process(&mut ctx);
                        ctx.into_outputs()
                    });

                // --- Apply outputs: states, on-edge sends, activity. ---
                let mut shard_image = shard_records;
                let per_page = self.ssd.page_size() / crate::SHARD_RECORD_BYTES;
                let mut shard_dirty = vec![false; shard_image.len().div_ceil(per_page)];
                let mut img_dirty: Vec<Vec<bool>> = images
                    .iter()
                    .map(|im| vec![false; im.records.len().div_ceil(per_page)])
                    .collect();
                for ((v, m, edges), out) in work.iter().zip(outputs) {
                    self.states[*v as usize] = out.state;
                    st.active_vertices += 1;
                    st.messages_processed += m.len() as u64;
                    st.edges_scanned += edges.len() as u64;
                    assert!(
                        out.structural.is_empty(),
                        "GraphChi baseline does not support structural updates"
                    );
                    if out.keep_active {
                        next_active.set(*v as usize);
                    }
                    for u in out.sends {
                        sends_total += 1;
                        next_active.set(u.dest as usize);
                        // Locate the edge record v→dest.
                        let slots = &out_edges[v];
                        let slot = slots
                            .iter()
                            .find(|&&(d, _, _)| d == u.dest)
                            .unwrap_or_else(|| {
                                // mlvc-lint: allow(no-panic-in-lib) -- a send along a non-edge violates the GraphChi model; abort
                                panic!(
                                    "GraphChi model requires sends along existing edges \
                                     ({v} -> {} missing)",
                                    u.dest
                                )
                            });
                        let (_, img_idx, rec_idx) = *slot;
                        let rec = if img_idx == usize::MAX {
                            shard_dirty[rec_idx / per_page] = true;
                            &mut shard_image[rec_idx]
                        } else {
                            img_dirty[img_idx][rec_idx / per_page] = true;
                            &mut images[img_idx].records[rec_idx]
                        };
                        if rec.tag as usize == superstep - 1 && rec.tag != 0 {
                            // Undelivered previous-superstep value: if the
                            // destination interval is still to be processed
                            // this superstep, reroute it.
                            let ji = intervals.interval_of(rec.dst);
                            if ji > i {
                                pending[ji as usize]
                                    .push(Update::new(rec.dst, rec.src, rec.data));
                            }
                        } else if rec.tag as usize == superstep {
                            // Second message on this edge this superstep.
                            match combine {
                                Some(f) => {
                                    rec.data = f(rec.data, u.data);
                                    continue;
                                }
                                None => {
                                    let ji = intervals.interval_of(rec.dst);
                                    next_pending[ji as usize]
                                        .push(Update::new(rec.dst, rec.src, rec.data));
                                }
                            }
                        }
                        rec.data = u.data;
                        rec.tag = superstep as u32;
                    }
                }

                // --- Write back the modified pages of the shard and its
                //     sliding windows. ---
                self.shards.write_back_dirty(i, 0, &shard_image, &shard_dirty)?;
                for (im, dirty) in images.iter().zip(&img_dirty) {
                    self.shards
                        .write_back_dirty(im.shard, im.first_page, &im.records, dirty)?;
                }
            }

            // Anything still pending for earlier intervals is impossible:
            // reroutes only target later intervals. Schedule next superstep.
            pending = next_pending;
            for (j, p) in pending.iter().enumerate() {
                if !p.is_empty() {
                    for u in p {
                        next_active.set(u.dest as usize);
                    }
                    let _ = j;
                }
            }
            active = next_active;
            all_active = false;
            st.messages_sent = sends_total;
            st.io = self.ssd.stats().snapshot().since(&io0);
            st.compute_ns = st.messages_processed * self.cfg.cost.sort_ns
                + st.messages_delivered * self.cfg.cost.msg_process_ns
                + st.edges_scanned * self.cfg.cost.edge_scan_ns;
            st.wall_ns = wall0.elapsed().as_nanos() as u64;
            report.supersteps.push(st);
        }
        if !all_active && active.count() == 0 && pending.iter().all(|p| p.is_empty()) {
            report.converged = true;
        }
        Ok(())
    }
}

impl Engine for GraphChiEngine {
    fn name(&self) -> &'static str {
        "GraphChi"
    }

    fn states(&self) -> &[u64] {
        &self.states
    }

    fn run(&mut self, prog: &dyn VertexProgram, max_supersteps: usize) -> RunReport {
        let mut report = RunReport {
            engine: self.name().to_string(),
            app: prog.name().to_string(),
            ..Default::default()
        };
        if let Err(e) = self.drive(prog, max_supersteps, &mut report) {
            report.interrupted = Some(e);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlvc_ssd::SsdConfig;

    fn engines_for(
        csr: &Csr,
        k: usize,
    ) -> (GraphChiEngine, mlvc_core::MultiLogEngine) {
        let iv = VertexIntervals::uniform(csr.num_vertices(), k);
        let ssd1 = Arc::new(Ssd::new(SsdConfig::test_small()));
        let gchi = GraphChiEngine::new(ssd1, csr, iv.clone(), EngineConfig::default()).unwrap();
        let ssd2 = Arc::new(Ssd::new(SsdConfig::test_small()));
        let sg = mlvc_graph::StoredGraph::store_with(&ssd2, csr, "m", iv).unwrap();
        let mlvc = mlvc_core::MultiLogEngine::new(ssd2, sg, EngineConfig::default());
        (gchi, mlvc)
    }

    #[test]
    fn bfs_agrees_with_multilogvc() {
        let g = mlvc_gen::rmat(mlvc_gen::RmatParams::social(9, 6), 21);
        let (mut gchi, mut mlvc) = engines_for(&g, 4);
        let app = mlvc_apps::Bfs::new(3);
        let r1 = gchi.run(&app, 100);
        let r2 = mlvc.run(&app, 100);
        assert!(r1.converged && r2.converged);
        assert_eq!(gchi.states(), mlvc.states());
    }

    #[test]
    fn cdlp_agrees_with_multilogvc() {
        let g = mlvc_gen::sbm(
            mlvc_gen::SbmParams { n: 120, communities: 3, intra_degree: 10.0, inter_degree: 0.5 },
            7,
        );
        let (mut gchi, mut mlvc) = engines_for(&g, 3);
        let r1 = gchi.run(&mlvc_apps::Cdlp, 20);
        let r2 = mlvc.run(&mlvc_apps::Cdlp, 20);
        assert_eq!(gchi.states(), mlvc.states());
        let _ = (r1, r2);
    }

    #[test]
    fn coloring_agrees_and_is_proper() {
        let g = mlvc_gen::rmat(mlvc_gen::RmatParams::social(8, 4), 30);
        let (mut gchi, mut mlvc) = engines_for(&g, 4);
        // Coloring keeps per-run auxiliary state: fresh instance per run.
        let r1 = gchi.run(&mlvc_apps::Coloring::new(), 300);
        let r2 = mlvc.run(&mlvc_apps::Coloring::new(), 300);
        assert!(r1.converged && r2.converged);
        assert_eq!(gchi.states(), mlvc.states());
        let colors: Vec<u32> = gchi.states().iter().map(|&s| s as u32).collect();
        assert!(mlvc_apps::is_proper_coloring(&g, &colors));
    }

    #[test]
    fn mis_agrees_with_multilogvc() {
        let g = mlvc_gen::rmat(mlvc_gen::RmatParams::social(8, 4), 11);
        let (mut gchi, mut mlvc) = engines_for(&g, 4);
        let r1 = gchi.run(&mlvc_apps::Mis, 200);
        let r2 = mlvc.run(&mlvc_apps::Mis, 200);
        assert!(r1.converged && r2.converged);
        assert_eq!(gchi.states(), mlvc.states());
    }

    #[test]
    fn pagerank_agrees_within_float_tolerance() {
        let g = mlvc_gen::grid(5, 6);
        let (mut gchi, mut mlvc) = engines_for(&g, 3);
        let app = mlvc_apps::PageRank::new(0.85, 1e-10);
        gchi.run(&app, 300);
        mlvc.run(&app, 300);
        for v in 0..g.num_vertices() {
            let a = mlvc_apps::PageRank::rank(gchi.states()[v]);
            let b = mlvc_apps::PageRank::rank(mlvc.states()[v]);
            assert!((a - b).abs() < 1e-9, "v={v}: {a} vs {b}");
        }
    }

    #[test]
    fn random_walk_total_visits_agree() {
        // Walk forwarding order differs between engines (message order is
        // engine-specific), so only aggregates are comparable.
        let g = mlvc_gen::cycle(40);
        let (mut gchi, mut mlvc) = engines_for(&g, 4);
        let app = mlvc_apps::RandomWalk::new(10, 2, 10);
        let r1 = gchi.run(&app, 30);
        let r2 = mlvc.run(&app, 30);
        assert!(r1.converged && r2.converged);
        let t1: u64 = gchi.states().iter().sum();
        let t2: u64 = mlvc.states().iter().sum();
        assert_eq!(t1, t2, "4 sources × 2 walks × 11 visits");
        assert_eq!(t1, 88);
    }

    #[test]
    fn graphchi_reads_more_pages_on_sparse_activity() {
        // BFS touching a small fraction of a large graph: GraphChi loads
        // whole shards; MultiLogVC only the active pages. This is the
        // paper's central claim (Fig. 5b) in miniature.
        let g = mlvc_gen::rmat(mlvc_gen::RmatParams::social(10, 8), 17);
        let (mut gchi, mut mlvc) = engines_for(&g, 8);
        let app = mlvc_apps::Bfs::new(0);
        let r1 = gchi.run(&app, 4);
        let r2 = mlvc.run(&app, 4);
        assert!(
            r1.total_pages() > 2 * r2.total_pages(),
            "GraphChi {} vs MultiLogVC {} pages",
            r1.total_pages(),
            r2.total_pages()
        );
    }

    #[test]
    fn idle_intervals_skip_shard_loads() {
        // Seeded BFS on a path: superstep 1 touches one interval only.
        let g = mlvc_gen::path(64);
        let iv = VertexIntervals::uniform(64, 8);
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let mut gchi = GraphChiEngine::new(Arc::clone(&ssd), &g, iv, EngineConfig::default()).unwrap();
        let r = gchi.run(&mlvc_apps::Bfs::new(0), 2);
        let s1 = &r.supersteps[0];
        // Interval 0's shard + windows only — far fewer pages than the
        // whole graph would need.
        assert!(s1.active_vertices == 1);
        assert!(s1.io.pages_read < 10, "pages {}", s1.io.pages_read);
    }
}

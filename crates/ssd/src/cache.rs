//! Shared page cache with single-flight request merging and a pinned tier.
//!
//! The serving daemon (`mlvc-serve`) runs many tenants against one
//! simulated device; hot graph pages (interval row pointers, column
//! indices) are identical across tenants, so a shared cache in front of
//! the device turns N concurrent faults on the same page into one device
//! read (FlashGraph's request-merging insight, PAPERS.md).
//!
//! Design:
//!
//! * **Replacement policy** — [`CachePolicy::TwoQ`] (the default) is the
//!   classic scan-resistant 2Q: new pages enter a probationary FIFO
//!   (*A1in*); a page evicted from A1in leaves only its key behind in a
//!   ghost queue (*A1out*); a fault on a ghosted key proves re-reference
//!   and admits the page to the hot LRU (*Am*). Hits inside A1in do
//!   *not* promote — a one-pass scan flows through A1in and the ghosts
//!   without ever displacing Am (FlashGraph's SAFS insight: partial
//!   caching only pays off if sequential scans can't flush the hot set).
//!   [`CachePolicy::Clock`] keeps the PR-6 second-chance sweep as a
//!   measured baseline. Queue order is maintained lazily: entries carry a
//!   stamp and are validated against the owning frame on pop, so an Am
//!   hit is O(1) (push a fresh stamped entry) instead of an unlink.
//! * **Pinned tier** — [`PageCache::pin_pages`] copies an extent into a
//!   separate map that is exempt from eviction and checked before the
//!   frame pool. The engine uses this for GraphMP-style hot-interval
//!   topology pinning (DESIGN.md §18). Pinned copies are dropped by the
//!   same write/truncate invalidation as frames; callers must not race a
//!   writer against `pin_pages` itself.
//! * **Single-flight merging** — the first tenant to fault a page marks it
//!   in-flight and reads it from the device; concurrent tenants faulting
//!   the same page block on a condvar and are served from the filled
//!   frame, counted as (cross-tenant) hits.
//! * **Write coherence** — the device invalidates cached frames (and
//!   pinned copies, and ghost keys) on every page write and whole files on
//!   truncate/delete. A write racing an in-flight fill marks the fill
//!   *dirty*: the fetched data is still returned to its requester (the
//!   read linearizes before the write) but is never inserted, so no stale
//!   frame can outlive the write.
//! * **Accounting identity** — a hit (frame or pinned) charges *nothing*
//!   to [`SsdStats`]; every non-hit request ends as exactly one charged
//!   device page read. Therefore, per tenant: `cache hits + cached-run
//!   pages_read == uncached-run pages_read`, exactly, under eviction,
//!   merging, pinning and dirty skips — for *any* policy (pinned by
//!   `crates/serve` tests and the policy-identity test below).
//!
//! The interior lock is a raw `std::sync::Mutex` (poison-recovered, the
//! `mlvc_obs` precedent) because `Condvar` cannot wait on the workspace's
//! custom `mlvc_ssd::sync` guards.
//!
//! [`SsdStats`]: crate::SsdStats

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::ops::Range;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::checked::{to_u64, to_usize};
use crate::cost::PageAddr;
use crate::device::{FileId, Ssd};
use crate::fault::DeviceError;

/// Identity of a cache client. The base device reads as tenant 0; the
/// serving daemon assigns each admitted job a fresh id from 1.
pub type TenantId = u32;

type PageKey = (FileId, u64);

/// Replacement policy for the frame pool (the pinned tier is policy-free).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Second-chance CLOCK sweep — the original PR-6 policy, kept as the
    /// measured baseline for the `BENCH_cache.json` sweep.
    Clock,
    /// Scan-resistant 2Q: probationary A1in FIFO + A1out ghost keys + hot
    /// Am LRU. The default for every constructor except [`PageCache::with_policy`].
    #[default]
    TwoQ,
}

/// Which 2Q queue a resident frame currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueKind {
    A1in,
    Am,
}

/// One frame: a resident page copy plus its replacement state and the
/// tenant that inserted it (for cross-tenant hit attribution).
struct Frame {
    key: Option<PageKey>,
    data: Vec<u8>,
    /// CLOCK reference bit (unused under 2Q).
    referenced: bool,
    inserter: TenantId,
    /// 2Q membership (unused under CLOCK).
    queue: QueueKind,
    /// Matches the live queue entry for this frame; stale entries with an
    /// older stamp are skipped on pop.
    stamp: u64,
}

/// A page held in the pinned tier: exempt from eviction, checked before
/// the frame pool, dropped only by invalidation or [`PageCache::unpin_file`].
struct PinnedPage {
    data: Vec<u8>,
    inserter: TenantId,
}

/// A page currently being fetched from the device by one owner tenant.
/// `dirty` is set by write invalidation racing the fill; a dirty fill is
/// returned to its requester but never inserted.
struct InFlight {
    dirty: bool,
}

/// Per-tenant cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Requests served from a resident frame or a pinned page (including
    /// merged waits on an in-flight fill that landed).
    pub hits: u64,
    /// Requests this tenant had to read from the device itself.
    pub misses: u64,
    /// Device bytes avoided: one full page per hit.
    pub bytes_saved: u64,
}

/// Point-in-time view of the whole cache (per-tenant + global counters).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub policy: CachePolicy,
    pub capacity_pages: usize,
    /// Frames currently holding a page (pinned pages not counted).
    pub resident_pages: usize,
    /// Frames reclaimed by the replacement policy (invalidations and pin
    /// take-overs not counted).
    pub evictions: u64,
    /// Hits on frames or pins inserted by a *different* tenant — the
    /// shared-cache win the serving daemon exists to produce.
    pub cross_tenant_hits: u64,
    /// Pages in the pinned tier.
    pub pinned_pages: usize,
    /// Bytes held by the pinned tier (the budget-ledger charge).
    pub pinned_bytes: u64,
    /// Hits served from the pinned tier (also counted in tenant hits).
    pub pinned_hits: u64,
    pub tenants: BTreeMap<TenantId, TenantCacheStats>,
}

impl CacheSnapshot {
    /// Total hits across tenants.
    pub fn total_hits(&self) -> u64 {
        self.tenants.values().map(|t| t.hits).sum()
    }

    /// Total misses across tenants.
    pub fn total_misses(&self) -> u64 {
        self.tenants.values().map(|t| t.misses).sum()
    }

    /// Stats for one tenant (zeroes if it never issued a request).
    pub fn tenant(&self, id: TenantId) -> TenantCacheStats {
        self.tenants.get(&id).copied().unwrap_or_default()
    }
}

struct CacheInner {
    policy: CachePolicy,
    frames: Vec<Frame>,
    /// Resident pages: key -> frame index.
    map: HashMap<PageKey, usize>,
    /// Pages being fetched right now, each by exactly one owner.
    in_flight: HashMap<PageKey, InFlight>,
    /// CLOCK sweep position (unused under 2Q).
    hand: usize,
    /// Unoccupied frame indices (2Q only; CLOCK finds empties by sweeping).
    free: Vec<usize>,
    /// Probationary FIFO: stamped entries, validated lazily on pop.
    a1in: VecDeque<(PageKey, u64)>,
    /// Hot LRU: stamped entries; an Am hit pushes a fresh entry and the
    /// stale one is skipped on pop.
    am: VecDeque<(PageKey, u64)>,
    /// Frames currently in A1in / Am (deque lengths overcount).
    a1in_live: usize,
    am_live: usize,
    /// A1out ghost keys in FIFO order (`ghost_set` is the membership
    /// truth; deque entries absent from the set are stale).
    ghost: VecDeque<PageKey>,
    ghost_set: HashSet<PageKey>,
    stamp: u64,
    pinned: HashMap<PageKey, PinnedPage>,
    pinned_bytes: u64,
    pinned_hits: u64,
    evictions: u64,
    cross_tenant_hits: u64,
    tenants: BTreeMap<TenantId, TenantCacheStats>,
}

impl CacheInner {
    /// A1in capacity target: once the probationary queue holds this many
    /// frames, new insertions evict from A1in (2Q's Kin, ~¼ of frames).
    fn kin(&self) -> usize {
        (self.frames.len() / 4).max(1)
    }

    /// Ghost-queue capacity (2Q's Kout, ~½ of frames' worth of keys).
    fn kout(&self) -> usize {
        (self.frames.len() / 2).max(1)
    }
}

/// The shared page cache. Attach to a device with [`Ssd::attach_cache`];
/// every subsequent `read_batch` on the device (or any tenant view of it)
/// is served through the cache.
pub struct PageCache {
    state: Mutex<CacheInner>,
    filled: Condvar,
}

/// Poison recovery for the raw mutex: a panicked holder aborts its own
/// job, not the daemon, so the guard is always usable.
fn locked(m: &Mutex<CacheInner>) -> MutexGuard<'_, CacheInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl PageCache {
    /// A cache holding at most `capacity_pages` resident pages (clamped to
    /// at least one frame), using the default scan-resistant 2Q policy.
    pub fn new(capacity_pages: usize) -> Self {
        PageCache::with_policy(capacity_pages, CachePolicy::default())
    }

    /// A cache with an explicit replacement policy (CLOCK is kept for
    /// baseline measurements and the policy-identity tests).
    pub fn with_policy(capacity_pages: usize, policy: CachePolicy) -> Self {
        let cap = capacity_pages.max(1);
        let mut frames = Vec::with_capacity(cap);
        for _ in 0..cap {
            frames.push(Frame {
                key: None,
                data: Vec::new(),
                referenced: false,
                inserter: 0,
                queue: QueueKind::A1in,
                stamp: 0,
            });
        }
        // Reverse order so `pop()` hands out frame 0 first — keeps frame
        // assignment deterministic and matches the CLOCK fill order.
        let free = if policy == CachePolicy::TwoQ { (0..cap).rev().collect() } else { Vec::new() };
        PageCache {
            state: Mutex::new(CacheInner {
                policy,
                frames,
                map: HashMap::new(),
                in_flight: HashMap::new(),
                hand: 0,
                free,
                a1in: VecDeque::new(),
                am: VecDeque::new(),
                a1in_live: 0,
                am_live: 0,
                ghost: VecDeque::new(),
                ghost_set: HashSet::new(),
                stamp: 0,
                pinned: HashMap::new(),
                pinned_bytes: 0,
                pinned_hits: 0,
                evictions: 0,
                cross_tenant_hits: 0,
                tenants: BTreeMap::new(),
            }),
            filled: Condvar::new(),
        }
    }

    /// Size the cache from a byte budget and the device page size.
    pub fn for_budget(budget_bytes: u64, page_size: usize) -> Self {
        let per = to_u64(page_size).max(1);
        let pages = to_usize("cache frame count", budget_bytes / per).unwrap_or(usize::MAX / 2);
        PageCache::new(pages)
    }

    /// Number of frames.
    pub fn capacity_pages(&self) -> usize {
        locked(&self.state).frames.len()
    }

    /// Replacement policy of the frame pool.
    pub fn policy(&self) -> CachePolicy {
        locked(&self.state).policy
    }

    /// Bytes currently held by the pinned tier.
    pub fn pinned_bytes(&self) -> u64 {
        locked(&self.state).pinned_bytes
    }

    /// Pages currently held by the pinned tier.
    pub fn pinned_pages(&self) -> usize {
        locked(&self.state).pinned.len()
    }

    /// Counters + occupancy right now.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = locked(&self.state);
        CacheSnapshot {
            policy: inner.policy,
            capacity_pages: inner.frames.len(),
            resident_pages: inner.map.len(),
            evictions: inner.evictions,
            cross_tenant_hits: inner.cross_tenant_hits,
            pinned_pages: inner.pinned.len(),
            pinned_bytes: inner.pinned_bytes,
            pinned_hits: inner.pinned_hits,
            tenants: inner.tenants.clone(),
        }
    }

    /// Copy `pages` of `file` into the pinned tier, reading any absent
    /// pages through the cache (charged to `dev`'s tenant like any other
    /// read). Already-pinned pages are skipped, so re-pinning a hot extent
    /// is idempotent and free. Returns the number of *newly* pinned pages.
    ///
    /// A resident frame copy is handed over to the pinned tier (the frame
    /// is released, not counted as an eviction). Callers must not run a
    /// writer against `file` concurrently with the pin itself; after the
    /// pin, write/truncate invalidation drops pinned copies like frames.
    pub fn pin_pages(&self, dev: &Ssd, file: FileId, pages: Range<u64>) -> Result<u64, DeviceError> {
        let useful = dev.page_size();
        let reqs: Vec<(FileId, u64, usize)> = pages.map(|p| (file, p, useful)).collect();
        if reqs.is_empty() {
            return Ok(0);
        }
        let tenant = dev.tenant();
        let data = self.read_through(dev, &reqs, tenant, true)?;
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        let mut newly = 0u64;
        for (d, &(f, p, _)) in data.into_iter().zip(&reqs) {
            let key = (f, p);
            if inner.pinned.contains_key(&key) {
                continue;
            }
            if let Some(fi) = inner.map.remove(&key) {
                release_frame(inner, fi);
            }
            inner.ghost_set.remove(&key);
            inner.pinned_bytes += to_u64(d.len());
            inner.pinned.insert(key, PinnedPage { data: d, inserter: tenant });
            newly += 1;
        }
        Ok(newly)
    }

    /// Pin every current page of `file` (see [`PageCache::pin_pages`]).
    pub fn pin_file(&self, dev: &Ssd, file: FileId) -> Result<u64, DeviceError> {
        let n = dev.num_pages(file)?;
        self.pin_pages(dev, file, 0..n)
    }

    /// Write-allocate into the pinned tier (DESIGN.md §18): copy a page
    /// whose bytes the writer is holding *right now* into the pinned map,
    /// with no device read at all. The payload is zero-padded to the page
    /// size so a later hit returns exactly what an uncached device read of
    /// the page would. Returns `false` (and pins nothing) if a pinned copy
    /// already exists. Called by the device's append-retention hook after
    /// the write landed and its invalidation ran, so the copy can never go
    /// stale out of order; a subsequent write or truncate drops it like
    /// any other pin.
    pub(crate) fn pin_written(
        &self,
        file: FileId,
        page: u64,
        payload: &[u8],
        page_size: usize,
        tenant: TenantId,
    ) -> bool {
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        let key = (file, page);
        if inner.pinned.contains_key(&key) {
            return false;
        }
        if let Some(fi) = inner.map.remove(&key) {
            release_frame(inner, fi);
        }
        inner.ghost_set.remove(&key);
        let mut data = vec![0u8; page_size];
        let keep = payload.len().min(page_size);
        data[..keep].copy_from_slice(&payload[..keep]);
        inner.pinned_bytes += to_u64(data.len());
        inner.pinned.insert(key, PinnedPage { data, inserter: tenant });
        true
    }

    /// Drop every pinned page of `file`, returning the count dropped.
    pub fn unpin_file(&self, file: FileId) -> u64 {
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        let mut dropped = 0u64;
        let mut freed = 0u64;
        inner.pinned.retain(|key, p| {
            if key.0 == file {
                freed += to_u64(p.data.len());
                dropped += 1;
                false
            } else {
                true
            }
        });
        inner.pinned_bytes = inner.pinned_bytes.saturating_sub(freed);
        dropped
    }

    /// Serve a read batch through the cache on behalf of `tenant`.
    ///
    /// Pinned pages and resident frames are copied out as hits; pages in
    /// flight under another owner are waited for; everything else is
    /// marked in flight and read from `dev` as one uncached device batch.
    /// The device lock is never held while the cache lock is (and vice
    /// versa).
    pub(crate) fn read_through(
        &self,
        dev: &Ssd,
        reqs: &[(FileId, u64, usize)],
        tenant: TenantId,
        charge_time: bool,
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        let mut out: Vec<Option<Vec<u8>>> = Vec::new();
        out.resize_with(reqs.len(), || None);
        let mut guard = locked(&self.state);
        loop {
            // Pass 1 (under the lock): hits from the pinned tier and
            // resident frames, claim ownership of unclaimed absent pages,
            // note any foreign fills to wait on.
            let mut owned: Vec<usize> = Vec::new();
            let mut wait_key: Option<PageKey> = None;
            for (i, &(file, page, _)) in reqs.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                let key = (file, page);
                if let Some(p) = guard.pinned.get(&key) {
                    let inserter = p.inserter;
                    let data = p.data.clone();
                    let saved = to_u64(data.len());
                    if inserter != tenant {
                        guard.cross_tenant_hits += 1;
                    }
                    guard.pinned_hits += 1;
                    let t = guard.tenants.entry(tenant).or_default();
                    t.hits += 1;
                    t.bytes_saved += saved;
                    out[i] = Some(data);
                } else if let Some(&fi) = guard.map.get(&key) {
                    touch_frame(&mut guard, fi);
                    let inserter = guard.frames[fi].inserter;
                    let data = guard.frames[fi].data.clone();
                    let saved = to_u64(data.len());
                    if inserter != tenant {
                        guard.cross_tenant_hits += 1;
                    }
                    let t = guard.tenants.entry(tenant).or_default();
                    t.hits += 1;
                    t.bytes_saved += saved;
                    out[i] = Some(data);
                } else if let Entry::Vacant(slot) = guard.in_flight.entry(key) {
                    slot.insert(InFlight { dirty: false });
                    owned.push(i);
                } else if wait_key.is_none() {
                    wait_key = Some(key);
                }
            }
            if owned.is_empty() {
                let Some(key) = wait_key else {
                    break; // every request resolved
                };
                // Wait for the owner to land (or abandon) this fill, then
                // re-run pass 1: the page is either resident now (hit) or
                // absent again (we become the owner).
                while guard.in_flight.contains_key(&key) {
                    guard = self.filled.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
                continue;
            }
            // Fetch owned pages as one device batch, cache lock released.
            let fetch: Vec<(FileId, u64, usize)> = owned.iter().map(|&i| reqs[i]).collect();
            drop(guard);
            let fetched = dev.read_batch_uncached_inner(&fetch, charge_time);
            guard = locked(&self.state);
            match fetched {
                Err(e) => {
                    for &i in &owned {
                        let (file, page, _) = reqs[i];
                        guard.in_flight.remove(&(file, page));
                    }
                    self.filled.notify_all();
                    return Err(e);
                }
                Ok(pages) => {
                    for (data, &i) in pages.into_iter().zip(&owned) {
                        let (file, page, _) = reqs[i];
                        let key = (file, page);
                        // A write that raced this fill marked it dirty; the
                        // data is still valid for *this* read (it linearizes
                        // before the write) but must not become resident.
                        let dirty =
                            guard.in_flight.remove(&key).is_none_or(|f| f.dirty);
                        if !dirty {
                            insert_frame(&mut guard, key, data.clone(), tenant);
                        }
                        guard.tenants.entry(tenant).or_default().misses += 1;
                        out[i] = Some(data);
                    }
                    self.filled.notify_all();
                }
            }
            // Loop again: duplicates of our own keys and foreign fills are
            // resolved by the next pass.
        }
        drop(guard);
        Ok(out.into_iter().map(Option::unwrap_or_default).collect())
    }

    /// Drop resident and pinned copies of the given pages and dirty any
    /// racing fills (called by the device on every page write).
    pub(crate) fn invalidate_addrs(&self, addrs: &[PageAddr]) {
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        for a in addrs {
            let key = (a.file, a.page);
            if let Some(fi) = inner.map.remove(&key) {
                release_frame(inner, fi);
            }
            if let Some(p) = inner.pinned.remove(&key) {
                inner.pinned_bytes = inner.pinned_bytes.saturating_sub(to_u64(p.data.len()));
            }
            inner.ghost_set.remove(&key);
            if let Some(f) = inner.in_flight.get_mut(&key) {
                f.dirty = true;
            }
        }
    }

    /// Drop every resident and pinned page of `file` and dirty its racing
    /// fills (called by the device on truncate/delete).
    pub(crate) fn invalidate_file(&self, file: FileId) {
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        let mut dropped: Vec<usize> = Vec::new();
        inner.map.retain(|key, fi| {
            if key.0 == file {
                dropped.push(*fi);
                false
            } else {
                true
            }
        });
        for fi in dropped {
            release_frame(inner, fi);
        }
        let mut freed = 0u64;
        inner.pinned.retain(|key, p| {
            if key.0 == file {
                freed += to_u64(p.data.len());
                false
            } else {
                true
            }
        });
        inner.pinned_bytes = inner.pinned_bytes.saturating_sub(freed);
        inner.ghost_set.retain(|k| k.0 != file);
        for (key, f) in inner.in_flight.iter_mut() {
            if key.0 == file {
                f.dirty = true;
            }
        }
    }
}

/// Record a hit on frame `fi`: CLOCK sets the reference bit; 2Q refreshes
/// Am recency (stale-stamp trick) and deliberately ignores A1in hits —
/// that non-promotion is the scan resistance.
fn touch_frame(inner: &mut CacheInner, fi: usize) {
    match inner.policy {
        CachePolicy::Clock => inner.frames[fi].referenced = true,
        CachePolicy::TwoQ => {
            if inner.frames[fi].queue == QueueKind::Am {
                let Some(key) = inner.frames[fi].key else { return };
                inner.stamp += 1;
                let stamp = inner.stamp;
                inner.frames[fi].stamp = stamp;
                inner.am.push_back((key, stamp));
                prune_stale(inner);
            }
        }
    }
}

/// Insert a fetched page into the frame pool (policy dispatch). Already
/// resident or pinned pages are left alone.
fn insert_frame(inner: &mut CacheInner, key: PageKey, data: Vec<u8>, tenant: TenantId) {
    if inner.map.contains_key(&key) || inner.pinned.contains_key(&key) || inner.frames.is_empty() {
        return;
    }
    match inner.policy {
        CachePolicy::Clock => insert_clock(inner, key, data, tenant),
        CachePolicy::TwoQ => insert_twoq(inner, key, data, tenant),
    }
}

/// CLOCK insertion: sweep from the hand giving referenced frames a second
/// chance; take the first empty or unreferenced frame. Bounded by two full
/// sweeps (the first clears every reference bit).
fn insert_clock(inner: &mut CacheInner, key: PageKey, data: Vec<u8>, tenant: TenantId) {
    let n = inner.frames.len();
    let mut steps = 0usize;
    while steps < 2 * n + 1 {
        let at = inner.hand;
        inner.hand = (inner.hand + 1) % n;
        steps += 1;
        let victim = &mut inner.frames[at];
        if victim.referenced {
            victim.referenced = false;
            continue;
        }
        if let Some(old) = victim.key.take() {
            inner.map.remove(&old);
            inner.evictions += 1;
        }
        victim.key = Some(key);
        victim.data = data;
        victim.referenced = true;
        victim.inserter = tenant;
        inner.map.insert(key, at);
        return;
    }
}

/// 2Q insertion: a key with a ghost entry proved re-reference and goes
/// straight to Am; everything else enters probationary A1in.
fn insert_twoq(inner: &mut CacheInner, key: PageKey, data: Vec<u8>, tenant: TenantId) {
    let hot = inner.ghost_set.remove(&key);
    let Some(fi) = reclaim_twoq(inner) else {
        return;
    };
    inner.stamp += 1;
    let stamp = inner.stamp;
    let f = &mut inner.frames[fi];
    f.key = Some(key);
    f.data = data;
    f.referenced = false;
    f.inserter = tenant;
    f.stamp = stamp;
    if hot {
        f.queue = QueueKind::Am;
        inner.am.push_back((key, stamp));
        inner.am_live += 1;
    } else {
        f.queue = QueueKind::A1in;
        inner.a1in.push_back((key, stamp));
        inner.a1in_live += 1;
    }
    inner.map.insert(key, fi);
    prune_stale(inner);
}

/// Find a frame for a new 2Q insertion: a free frame if any, else evict —
/// from A1in while it is over its Kin target (or Am is empty), else from
/// Am. An A1in victim leaves its key in the ghost queue; an Am victim is
/// simply forgotten.
fn reclaim_twoq(inner: &mut CacheInner) -> Option<usize> {
    if let Some(fi) = inner.free.pop() {
        return Some(fi);
    }
    let from_a1in = inner.am_live == 0 || inner.a1in_live >= inner.kin();
    let fi = if from_a1in {
        pop_valid(inner, QueueKind::A1in).or_else(|| pop_valid(inner, QueueKind::Am))
    } else {
        pop_valid(inner, QueueKind::Am).or_else(|| pop_valid(inner, QueueKind::A1in))
    }?;
    let kout = inner.kout();
    if let Some(old) = inner.frames[fi].key.take() {
        inner.map.remove(&old);
        if inner.frames[fi].queue == QueueKind::A1in {
            ghost_push(inner, old, kout);
        }
        inner.evictions += 1;
    }
    match inner.frames[fi].queue {
        QueueKind::A1in => inner.a1in_live = inner.a1in_live.saturating_sub(1),
        QueueKind::Am => inner.am_live = inner.am_live.saturating_sub(1),
    }
    inner.frames[fi].data = Vec::new();
    Some(fi)
}

/// Pop the first *valid* entry of `want`'s queue: the key must still be
/// resident, on the same frame, with the entry's stamp, in the same queue.
/// Everything else is a stale leftover from a lazy refresh or release.
fn pop_valid(inner: &mut CacheInner, want: QueueKind) -> Option<usize> {
    let q = match want {
        QueueKind::A1in => &mut inner.a1in,
        QueueKind::Am => &mut inner.am,
    };
    while let Some((key, stamp)) = q.pop_front() {
        if let Some(&fi) = inner.map.get(&key) {
            if inner.frames[fi].stamp == stamp && inner.frames[fi].queue == want {
                return Some(fi);
            }
        }
    }
    None
}

/// Remember an evicted A1in key in the ghost queue, bounded by `kout`.
fn ghost_push(inner: &mut CacheInner, key: PageKey, kout: usize) {
    if inner.ghost_set.insert(key) {
        inner.ghost.push_back(key);
    }
    while inner.ghost_set.len() > kout {
        let Some(old) = inner.ghost.pop_front() else {
            break;
        };
        inner.ghost_set.remove(&old);
    }
}

/// Compact the lazily-maintained queues once stale entries dominate. The
/// bound keeps queue memory O(capacity) while amortizing the retain.
fn prune_stale(inner: &mut CacheInner) {
    let limit = 4 * inner.frames.len() + 16;
    if inner.a1in.len() > limit {
        let map = &inner.map;
        let frames = &inner.frames;
        inner.a1in.retain(|&(key, stamp)| {
            map.get(&key)
                .is_some_and(|&fi| frames[fi].stamp == stamp && frames[fi].queue == QueueKind::A1in)
        });
    }
    if inner.am.len() > limit {
        let map = &inner.map;
        let frames = &inner.frames;
        inner.am.retain(|&(key, stamp)| {
            map.get(&key)
                .is_some_and(|&fi| frames[fi].stamp == stamp && frames[fi].queue == QueueKind::Am)
        });
    }
    if inner.ghost.len() > limit {
        let set = &inner.ghost_set;
        inner.ghost.retain(|k| set.contains(k));
    }
}

/// Clear a frame whose map entry was already removed (invalidation or pin
/// take-over — *not* a policy eviction). Under 2Q the frame returns to the
/// free list and leaves its queue entries stale.
fn release_frame(inner: &mut CacheInner, fi: usize) {
    if inner.frames[fi].key.take().is_none() {
        return;
    }
    if inner.policy == CachePolicy::TwoQ {
        match inner.frames[fi].queue {
            QueueKind::A1in => inner.a1in_live = inner.a1in_live.saturating_sub(1),
            QueueKind::Am => inner.am_live = inner.am_live.saturating_sub(1),
        }
        inner.free.push(fi);
    }
    inner.frames[fi].data = Vec::new();
    inner.frames[fi].referenced = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use std::sync::Arc;

    fn dev_with_pages(n: u8) -> (Arc<Ssd>, FileId) {
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let f = ssd.open_or_create("data").unwrap();
        for i in 0..n {
            ssd.append_page(f, &[i; 32]).unwrap();
        }
        (ssd, f)
    }

    #[test]
    fn hit_serves_identical_bytes_and_charges_nothing() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.stats().reset();
        let first = ssd.read_page(f, 2, 10).unwrap();
        let cold = ssd.stats().snapshot();
        assert_eq!(cold.pages_read, 1);
        let second = ssd.read_page(f, 2, 10).unwrap();
        assert_eq!(first, second, "hit must return the exact device bytes");
        let warm = ssd.stats().snapshot();
        assert_eq!(warm.pages_read, 1, "a hit charges no device read");
        assert_eq!(warm.read_time_ns, cold.read_time_ns, "a hit costs no device time");
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.tenant(0).hits, 1);
        assert_eq!(snap.tenant(0).misses, 1);
        assert_eq!(snap.tenant(0).bytes_saved, 256);
    }

    #[test]
    fn duplicate_requests_in_one_batch_read_the_device_once() {
        let (ssd, f) = dev_with_pages(2);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.stats().reset();
        let out = ssd.read_batch(&[(f, 0, 4), (f, 0, 4), (f, 1, 4), (f, 0, 4)]).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[3]);
        assert_eq!(ssd.stats().snapshot().pages_read, 2, "two distinct pages");
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.tenant(0).hits, 2);
        assert_eq!(snap.tenant(0).misses, 2);
    }

    #[test]
    fn accounting_identity_hits_plus_device_reads() {
        let (ssd, f) = dev_with_pages(8);
        // Uncached baseline.
        let reqs: Vec<(FileId, u64, usize)> =
            (0..32u64).map(|i| (f, i % 8, 8)).collect();
        ssd.stats().reset();
        ssd.read_batch(&reqs).unwrap();
        let uncached = ssd.stats().snapshot().pages_read;

        let (ssd2, f2) = dev_with_pages(8);
        ssd2.attach_cache(Arc::new(PageCache::new(4))); // smaller than the file: churn
        let reqs2: Vec<(FileId, u64, usize)> =
            (0..32u64).map(|i| (f2, i % 8, 8)).collect();
        ssd2.stats().reset();
        ssd2.read_batch(&reqs2).unwrap();
        let snap = ssd2.cache().unwrap().snapshot();
        let cached = ssd2.stats().snapshot().pages_read;
        assert_eq!(snap.tenant(0).hits + cached, uncached, "identity under eviction");
        assert!(snap.evictions > 0, "a 4-frame cache over 8 pages must churn");
    }

    /// Satellite: the accounting identity holds for *both* policies under
    /// a seeded random trace with heavy eviction pressure, and the two
    /// policies agree on the total (hits + device reads) even though they
    /// disagree on which requests hit.
    #[test]
    fn policy_identity_under_random_eviction_pressure() {
        // Uncached baseline: 300 requests = 300 device page reads.
        let reqs_for = |f: FileId| -> Vec<(FileId, u64, usize)> {
            let mut s: u64 = 0x5eed_cafe;
            (0..300)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (f, (s >> 33) % 16, 8)
                })
                .collect()
        };
        let (base, fb) = dev_with_pages(16);
        base.stats().reset();
        for r in reqs_for(fb) {
            base.read_batch(&[r]).unwrap();
        }
        let uncached = base.stats().snapshot().pages_read;
        assert_eq!(uncached, 300);

        for policy in [CachePolicy::Clock, CachePolicy::TwoQ] {
            let (ssd, f) = dev_with_pages(16);
            ssd.attach_cache(Arc::new(PageCache::with_policy(4, policy)));
            ssd.stats().reset();
            for r in reqs_for(f) {
                ssd.read_batch(&[r]).unwrap();
            }
            let snap = ssd.cache().unwrap().snapshot();
            let cached = ssd.stats().snapshot().pages_read;
            assert_eq!(
                snap.tenant(0).hits + cached,
                uncached,
                "identity must hold for {policy:?} under churn"
            );
            assert!(snap.evictions > 0, "{policy:?} must churn with 4 frames over 16 pages");
        }
    }

    #[test]
    fn write_invalidates_resident_page() {
        let (ssd, f) = dev_with_pages(2);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        let before = ssd.read_page(f, 0, 4).unwrap();
        ssd.write_page(f, 0, b"fresh").unwrap();
        let after = ssd.read_page(f, 0, 5).unwrap();
        assert_ne!(before, after, "stale frame must not survive the write");
        assert_eq!(&after[..5], b"fresh");
    }

    #[test]
    fn truncate_invalidates_whole_file() {
        let (ssd, f) = dev_with_pages(3);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.read_batch(&[(f, 0, 4), (f, 1, 4), (f, 2, 4)]).unwrap();
        ssd.truncate(f).unwrap();
        assert_eq!(ssd.cache().unwrap().snapshot().resident_pages, 0);
        // A read past the new bound must fail: the cache cannot resurrect
        // truncated pages.
        assert!(ssd.read_page(f, 0, 0).is_err());
    }

    #[test]
    fn cross_tenant_hits_are_attributed() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        let a = Arc::new(ssd.tenant_view(1));
        let b = Arc::new(ssd.tenant_view(2));
        a.read_page(f, 0, 8).unwrap();
        b.read_page(f, 0, 8).unwrap();
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.cross_tenant_hits, 1);
        assert_eq!(snap.tenant(1).misses, 1);
        assert_eq!(snap.tenant(2).hits, 1);
        assert_eq!(snap.tenant(2).misses, 0);
    }

    #[test]
    fn clock_evicts_unreferenced_frame_before_referenced_one() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::with_policy(2, CachePolicy::Clock)));
        ssd.read_page(f, 0, 4).unwrap(); // frame 0 = page 0, referenced
        ssd.read_page(f, 1, 4).unwrap(); // frame 1 = page 1, referenced
        // Page 2 sweeps once (clearing both bits), evicts page 0, and
        // lands referenced; page 1's bit stays cleared.
        ssd.read_page(f, 2, 4).unwrap();
        // Page 3 must take the unreferenced frame (page 1) and give the
        // referenced page 2 its second chance.
        ssd.read_page(f, 3, 4).unwrap();
        ssd.stats().reset();
        ssd.read_page(f, 2, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 0, "page 2 stayed resident");
        ssd.read_page(f, 1, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 1, "page 1 was the victim");
    }

    /// The 2Q scan-resistance claim: a page that proved re-reference (Am)
    /// survives a long one-pass cold scan that would flush CLOCK.
    #[test]
    fn twoq_hot_page_survives_cold_scan() {
        let (ssd, f) = dev_with_pages(32);
        ssd.attach_cache(Arc::new(PageCache::with_policy(4, CachePolicy::TwoQ)));
        // Fill A1in, push page 0 out into the ghost queue, then re-fault
        // it: the ghost hit admits page 0 to Am.
        for p in 0..5u64 {
            ssd.read_page(f, p, 4).unwrap();
        }
        ssd.read_page(f, 0, 4).unwrap();
        // A 16-page cold scan churns through A1in but must not touch Am.
        for p in 10..26u64 {
            ssd.read_page(f, p, 4).unwrap();
        }
        ssd.stats().reset();
        ssd.read_page(f, 0, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 0, "hot page must survive the scan");

        // The CLOCK baseline loses the same page to the same scan.
        let (ssd2, f2) = dev_with_pages(32);
        ssd2.attach_cache(Arc::new(PageCache::with_policy(4, CachePolicy::Clock)));
        for p in 0..5u64 {
            ssd2.read_page(f2, p, 4).unwrap();
        }
        ssd2.read_page(f2, 0, 4).unwrap();
        for p in 10..26u64 {
            ssd2.read_page(f2, p, 4).unwrap();
        }
        ssd2.stats().reset();
        ssd2.read_page(f2, 0, 4).unwrap();
        assert_eq!(ssd2.stats().snapshot().pages_read, 1, "CLOCK loses the page to the scan");
    }

    /// Hits inside the probationary A1in FIFO must not promote: the page
    /// is still evicted in arrival order (that non-promotion is what makes
    /// a one-pass scan harmless).
    #[test]
    fn twoq_probationary_hit_does_not_promote() {
        let (ssd, f) = dev_with_pages(8);
        ssd.attach_cache(Arc::new(PageCache::with_policy(4, CachePolicy::TwoQ)));
        ssd.read_page(f, 0, 4).unwrap();
        ssd.read_page(f, 0, 4).unwrap(); // A1in hit — must NOT promote
        for p in 1..5u64 {
            ssd.read_page(f, p, 4).unwrap(); // fills the pool; page 4 evicts the FIFO head
        }
        ssd.stats().reset();
        ssd.read_page(f, 0, 4).unwrap();
        assert_eq!(
            ssd.stats().snapshot().pages_read,
            1,
            "page 0 must be evicted in FIFO order despite its A1in hit"
        );
    }

    /// Pinned pages are exempt from eviction: an arbitrarily long scan
    /// cannot displace them, and hits on them charge nothing.
    #[test]
    fn pinned_pages_survive_eviction_and_serve_hits() {
        let (ssd, f) = dev_with_pages(16);
        let cache = Arc::new(PageCache::with_policy(2, CachePolicy::TwoQ));
        ssd.attach_cache(Arc::clone(&cache));
        assert_eq!(cache.pin_pages(&ssd, f, 0..2).unwrap(), 2);
        assert_eq!(cache.pinned_bytes(), 512, "two full 256-byte pages held");
        assert_eq!(cache.pin_pages(&ssd, f, 0..2).unwrap(), 0, "re-pin is idempotent");
        ssd.stats().reset();
        for p in 2..16u64 {
            ssd.read_page(f, p, 4).unwrap(); // scan far beyond the 2 frames
        }
        ssd.read_page(f, 0, 4).unwrap();
        ssd.read_page(f, 1, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 14, "pinned pages charged nothing");
        let snap = cache.snapshot();
        assert_eq!(snap.pinned_pages, 2);
        // 2 hits from the idempotent re-pin probe + 2 from the reads.
        assert_eq!(snap.pinned_hits, 4);
    }

    /// Write and truncate coherence extends to the pinned tier: no stale
    /// pinned copy survives a mutation of its file.
    #[test]
    fn write_and_truncate_drop_pinned_copies() {
        let (ssd, f) = dev_with_pages(4);
        let cache = Arc::new(PageCache::new(8));
        ssd.attach_cache(Arc::clone(&cache));
        cache.pin_file(&ssd, f).unwrap();
        assert_eq!(cache.pinned_pages(), 4);
        ssd.write_page(f, 1, b"fresh").unwrap();
        assert_eq!(cache.pinned_pages(), 3, "the written page's pin is dropped");
        let after = ssd.read_page(f, 1, 5).unwrap();
        assert_eq!(&after[..5], b"fresh");
        ssd.truncate(f).unwrap();
        let snap = cache.snapshot();
        assert_eq!(snap.pinned_pages, 0);
        assert_eq!(snap.pinned_bytes, 0);
        assert_eq!(snap.resident_pages, 0);
    }

    /// The accounting identity is preserved by pin fills: pinning charges
    /// its own device reads like any other request, so `hits +
    /// cached_reads == uncached_reads` still balances when the uncached
    /// baseline reads the pinned extent once.
    #[test]
    fn pin_fill_preserves_accounting_identity() {
        let reqs_for = |f: FileId| -> Vec<(FileId, u64, usize)> {
            (0..24u64).map(|i| (f, i % 8, 8)).collect()
        };
        // Uncached baseline: the pin extent once, then the workload.
        let (base, fb) = dev_with_pages(8);
        base.stats().reset();
        base.read_batch(&[(fb, 0, 256), (fb, 1, 256)]).unwrap();
        for r in reqs_for(fb) {
            base.read_batch(&[r]).unwrap();
        }
        let uncached = base.stats().snapshot().pages_read;

        let (ssd, f) = dev_with_pages(8);
        let cache = Arc::new(PageCache::with_policy(2, CachePolicy::TwoQ));
        ssd.attach_cache(Arc::clone(&cache));
        ssd.stats().reset();
        cache.pin_pages(&ssd, f, 0..2).unwrap();
        for r in reqs_for(f) {
            ssd.read_batch(&[r]).unwrap();
        }
        let snap = cache.snapshot();
        let cached = ssd.stats().snapshot().pages_read;
        assert_eq!(snap.tenant(0).hits + cached, uncached, "identity holds under pinning");
        assert!(snap.pinned_hits >= 6, "the pinned extent served the workload's hot pages");
    }

    #[test]
    fn budget_sizing_clamps_to_one_frame() {
        let c = PageCache::for_budget(0, 4096);
        assert_eq!(c.capacity_pages(), 1);
        let c = PageCache::for_budget(10 * 4096, 4096);
        assert_eq!(c.capacity_pages(), 10);
    }
}

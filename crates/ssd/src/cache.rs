//! Shared page cache with single-flight request merging.
//!
//! The serving daemon (`mlvc-serve`) runs many tenants against one
//! simulated device; hot graph pages (interval row pointers, column
//! indices) are identical across tenants, so a shared cache in front of
//! the device turns N concurrent faults on the same page into one device
//! read (FlashGraph's request-merging insight, PAPERS.md).
//!
//! Design:
//!
//! * **CLOCK eviction** over a fixed frame array — a second-chance sweep
//!   keeps hot interval pages resident without LRU list maintenance.
//! * **Single-flight merging** — the first tenant to fault a page marks it
//!   in-flight and reads it from the device; concurrent tenants faulting
//!   the same page block on a condvar and are served from the filled
//!   frame, counted as (cross-tenant) hits.
//! * **Write coherence** — the device invalidates cached frames on every
//!   page write and whole files on truncate/delete. A write racing an
//!   in-flight fill marks the fill *dirty*: the fetched data is still
//!   returned to its requester (the read linearizes before the write) but
//!   is never inserted, so no stale frame can outlive the write.
//! * **Accounting identity** — a hit charges *nothing* to [`SsdStats`];
//!   every non-hit request ends as exactly one charged device page read.
//!   Therefore, per tenant: `cache hits + cached-run pages_read ==
//!   uncached-run pages_read`, exactly, under eviction, merging and
//!   dirty skips (pinned by `crates/serve` tests).
//!
//! The interior lock is a raw `std::sync::Mutex` (poison-recovered, the
//! `mlvc_obs` precedent) because `Condvar` cannot wait on the workspace's
//! custom `mlvc_ssd::sync` guards.
//!
//! [`SsdStats`]: crate::SsdStats

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::checked::{to_u64, to_usize};
use crate::cost::PageAddr;
use crate::device::{FileId, Ssd};
use crate::fault::DeviceError;

/// Identity of a cache client. The base device reads as tenant 0; the
/// serving daemon assigns each admitted job a fresh id from 1.
pub type TenantId = u32;

type PageKey = (FileId, u64);

/// One CLOCK frame: a resident page copy plus its reference bit and the
/// tenant that inserted it (for cross-tenant hit attribution).
struct Frame {
    key: Option<PageKey>,
    data: Vec<u8>,
    referenced: bool,
    inserter: TenantId,
}

/// A page currently being fetched from the device by one owner tenant.
/// `dirty` is set by write invalidation racing the fill; a dirty fill is
/// returned to its requester but never inserted.
struct InFlight {
    dirty: bool,
}

/// Per-tenant cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Requests served from a resident frame (including merged waits on an
    /// in-flight fill that landed).
    pub hits: u64,
    /// Requests this tenant had to read from the device itself.
    pub misses: u64,
    /// Device bytes avoided: one full page per hit.
    pub bytes_saved: u64,
}

/// Point-in-time view of the whole cache (per-tenant + global counters).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub capacity_pages: usize,
    pub resident_pages: usize,
    /// Frames reclaimed by the CLOCK sweep (invalidations not counted).
    pub evictions: u64,
    /// Hits on frames inserted by a *different* tenant — the shared-cache
    /// win the serving daemon exists to produce.
    pub cross_tenant_hits: u64,
    pub tenants: BTreeMap<TenantId, TenantCacheStats>,
}

impl CacheSnapshot {
    /// Total hits across tenants.
    pub fn total_hits(&self) -> u64 {
        self.tenants.values().map(|t| t.hits).sum()
    }

    /// Total misses across tenants.
    pub fn total_misses(&self) -> u64 {
        self.tenants.values().map(|t| t.misses).sum()
    }

    /// Stats for one tenant (zeroes if it never issued a request).
    pub fn tenant(&self, id: TenantId) -> TenantCacheStats {
        self.tenants.get(&id).copied().unwrap_or_default()
    }
}

struct CacheInner {
    frames: Vec<Frame>,
    /// Resident pages: key -> frame index.
    map: HashMap<PageKey, usize>,
    /// Pages being fetched right now, each by exactly one owner.
    in_flight: HashMap<PageKey, InFlight>,
    hand: usize,
    evictions: u64,
    cross_tenant_hits: u64,
    tenants: BTreeMap<TenantId, TenantCacheStats>,
}

/// The shared page cache. Attach to a device with [`Ssd::attach_cache`];
/// every subsequent `read_batch` on the device (or any tenant view of it)
/// is served through the cache.
pub struct PageCache {
    state: Mutex<CacheInner>,
    filled: Condvar,
}

/// Poison recovery for the raw mutex: a panicked holder aborts its own
/// job, not the daemon, so the guard is always usable.
fn locked(m: &Mutex<CacheInner>) -> MutexGuard<'_, CacheInner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl PageCache {
    /// A cache holding at most `capacity_pages` resident pages (clamped to
    /// at least one frame).
    pub fn new(capacity_pages: usize) -> Self {
        let cap = capacity_pages.max(1);
        let mut frames = Vec::with_capacity(cap);
        for _ in 0..cap {
            frames.push(Frame { key: None, data: Vec::new(), referenced: false, inserter: 0 });
        }
        PageCache {
            state: Mutex::new(CacheInner {
                frames,
                map: HashMap::new(),
                in_flight: HashMap::new(),
                hand: 0,
                evictions: 0,
                cross_tenant_hits: 0,
                tenants: BTreeMap::new(),
            }),
            filled: Condvar::new(),
        }
    }

    /// Size the cache from a byte budget and the device page size.
    pub fn for_budget(budget_bytes: u64, page_size: usize) -> Self {
        let per = to_u64(page_size).max(1);
        let pages = to_usize("cache frame count", budget_bytes / per).unwrap_or(usize::MAX / 2);
        PageCache::new(pages)
    }

    /// Number of frames.
    pub fn capacity_pages(&self) -> usize {
        locked(&self.state).frames.len()
    }

    /// Counters + occupancy right now.
    pub fn snapshot(&self) -> CacheSnapshot {
        let inner = locked(&self.state);
        CacheSnapshot {
            capacity_pages: inner.frames.len(),
            resident_pages: inner.map.len(),
            evictions: inner.evictions,
            cross_tenant_hits: inner.cross_tenant_hits,
            tenants: inner.tenants.clone(),
        }
    }

    /// Serve a read batch through the cache on behalf of `tenant`.
    ///
    /// Resident pages are copied out as hits; pages in flight under another
    /// owner are waited for; everything else is marked in flight and read
    /// from `dev` as one uncached device batch. The device lock is never
    /// held while the cache lock is (and vice versa).
    pub(crate) fn read_through(
        &self,
        dev: &Ssd,
        reqs: &[(FileId, u64, usize)],
        tenant: TenantId,
        charge_time: bool,
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        let mut out: Vec<Option<Vec<u8>>> = Vec::new();
        out.resize_with(reqs.len(), || None);
        let mut guard = locked(&self.state);
        loop {
            // Pass 1 (under the lock): hits from resident frames, claim
            // ownership of unclaimed absent pages, note any foreign fills
            // to wait on.
            let mut owned: Vec<usize> = Vec::new();
            let mut wait_key: Option<PageKey> = None;
            for (i, &(file, page, _)) in reqs.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                let key = (file, page);
                if let Some(&fi) = guard.map.get(&key) {
                    let inserter = guard.frames[fi].inserter;
                    guard.frames[fi].referenced = true;
                    let data = guard.frames[fi].data.clone();
                    let saved = to_u64(data.len());
                    if inserter != tenant {
                        guard.cross_tenant_hits += 1;
                    }
                    let t = guard.tenants.entry(tenant).or_default();
                    t.hits += 1;
                    t.bytes_saved += saved;
                    out[i] = Some(data);
                } else if let Entry::Vacant(slot) = guard.in_flight.entry(key) {
                    slot.insert(InFlight { dirty: false });
                    owned.push(i);
                } else if wait_key.is_none() {
                    wait_key = Some(key);
                }
            }
            if owned.is_empty() {
                let Some(key) = wait_key else {
                    break; // every request resolved
                };
                // Wait for the owner to land (or abandon) this fill, then
                // re-run pass 1: the page is either resident now (hit) or
                // absent again (we become the owner).
                while guard.in_flight.contains_key(&key) {
                    guard = self.filled.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
                continue;
            }
            // Fetch owned pages as one device batch, cache lock released.
            let fetch: Vec<(FileId, u64, usize)> = owned.iter().map(|&i| reqs[i]).collect();
            drop(guard);
            let fetched = dev.read_batch_uncached_inner(&fetch, charge_time);
            guard = locked(&self.state);
            match fetched {
                Err(e) => {
                    for &i in &owned {
                        let (file, page, _) = reqs[i];
                        guard.in_flight.remove(&(file, page));
                    }
                    self.filled.notify_all();
                    return Err(e);
                }
                Ok(pages) => {
                    for (data, &i) in pages.into_iter().zip(&owned) {
                        let (file, page, _) = reqs[i];
                        let key = (file, page);
                        // A write that raced this fill marked it dirty; the
                        // data is still valid for *this* read (it linearizes
                        // before the write) but must not become resident.
                        let dirty =
                            guard.in_flight.remove(&key).is_none_or(|f| f.dirty);
                        if !dirty {
                            insert_frame(&mut guard, key, data.clone(), tenant);
                        }
                        guard.tenants.entry(tenant).or_default().misses += 1;
                        out[i] = Some(data);
                    }
                    self.filled.notify_all();
                }
            }
            // Loop again: duplicates of our own keys and foreign fills are
            // resolved by the next pass.
        }
        drop(guard);
        Ok(out.into_iter().map(Option::unwrap_or_default).collect())
    }

    /// Drop resident copies of the given pages and dirty any racing fills
    /// (called by the device on every page write).
    pub(crate) fn invalidate_addrs(&self, addrs: &[PageAddr]) {
        let mut guard = locked(&self.state);
        for a in addrs {
            let key = (a.file, a.page);
            if let Some(fi) = guard.map.remove(&key) {
                guard.frames[fi].key = None;
                guard.frames[fi].data = Vec::new();
                guard.frames[fi].referenced = false;
            }
            if let Some(f) = guard.in_flight.get_mut(&key) {
                f.dirty = true;
            }
        }
    }

    /// Drop every resident page of `file` and dirty its racing fills
    /// (called by the device on truncate/delete).
    pub(crate) fn invalidate_file(&self, file: FileId) {
        let mut guard = locked(&self.state);
        let inner = &mut *guard;
        inner.map.retain(|key, fi| {
            if key.0 == file {
                inner.frames[*fi].key = None;
                inner.frames[*fi].data = Vec::new();
                inner.frames[*fi].referenced = false;
                false
            } else {
                true
            }
        });
        for (key, f) in inner.in_flight.iter_mut() {
            if key.0 == file {
                f.dirty = true;
            }
        }
    }
}

/// CLOCK insertion: sweep from the hand giving referenced frames a second
/// chance; take the first empty or unreferenced frame. Bounded by two full
/// sweeps (the first clears every reference bit).
fn insert_frame(inner: &mut CacheInner, key: PageKey, data: Vec<u8>, tenant: TenantId) {
    if inner.map.contains_key(&key) || inner.frames.is_empty() {
        return;
    }
    let n = inner.frames.len();
    let mut steps = 0usize;
    while steps < 2 * n + 1 {
        let at = inner.hand;
        inner.hand = (inner.hand + 1) % n;
        steps += 1;
        let victim = &mut inner.frames[at];
        if victim.referenced {
            victim.referenced = false;
            continue;
        }
        if let Some(old) = victim.key.take() {
            inner.map.remove(&old);
            inner.evictions += 1;
        }
        victim.key = Some(key);
        victim.data = data;
        victim.referenced = true;
        victim.inserter = tenant;
        inner.map.insert(key, at);
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use std::sync::Arc;

    fn dev_with_pages(n: u8) -> (Arc<Ssd>, FileId) {
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let f = ssd.open_or_create("data").unwrap();
        for i in 0..n {
            ssd.append_page(f, &[i; 32]).unwrap();
        }
        (ssd, f)
    }

    #[test]
    fn hit_serves_identical_bytes_and_charges_nothing() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.stats().reset();
        let first = ssd.read_page(f, 2, 10).unwrap();
        let cold = ssd.stats().snapshot();
        assert_eq!(cold.pages_read, 1);
        let second = ssd.read_page(f, 2, 10).unwrap();
        assert_eq!(first, second, "hit must return the exact device bytes");
        let warm = ssd.stats().snapshot();
        assert_eq!(warm.pages_read, 1, "a hit charges no device read");
        assert_eq!(warm.read_time_ns, cold.read_time_ns, "a hit costs no device time");
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.tenant(0).hits, 1);
        assert_eq!(snap.tenant(0).misses, 1);
        assert_eq!(snap.tenant(0).bytes_saved, 256);
    }

    #[test]
    fn duplicate_requests_in_one_batch_read_the_device_once() {
        let (ssd, f) = dev_with_pages(2);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.stats().reset();
        let out = ssd.read_batch(&[(f, 0, 4), (f, 0, 4), (f, 1, 4), (f, 0, 4)]).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0], out[3]);
        assert_eq!(ssd.stats().snapshot().pages_read, 2, "two distinct pages");
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.tenant(0).hits, 2);
        assert_eq!(snap.tenant(0).misses, 2);
    }

    #[test]
    fn accounting_identity_hits_plus_device_reads() {
        let (ssd, f) = dev_with_pages(8);
        // Uncached baseline.
        let reqs: Vec<(FileId, u64, usize)> =
            (0..32u64).map(|i| (f, i % 8, 8)).collect();
        ssd.stats().reset();
        ssd.read_batch(&reqs).unwrap();
        let uncached = ssd.stats().snapshot().pages_read;

        let (ssd2, f2) = dev_with_pages(8);
        ssd2.attach_cache(Arc::new(PageCache::new(4))); // smaller than the file: churn
        let reqs2: Vec<(FileId, u64, usize)> =
            (0..32u64).map(|i| (f2, i % 8, 8)).collect();
        ssd2.stats().reset();
        ssd2.read_batch(&reqs2).unwrap();
        let snap = ssd2.cache().unwrap().snapshot();
        let cached = ssd2.stats().snapshot().pages_read;
        assert_eq!(snap.tenant(0).hits + cached, uncached, "identity under eviction");
        assert!(snap.evictions > 0, "a 4-frame cache over 8 pages must churn");
    }

    #[test]
    fn write_invalidates_resident_page() {
        let (ssd, f) = dev_with_pages(2);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        let before = ssd.read_page(f, 0, 4).unwrap();
        ssd.write_page(f, 0, b"fresh").unwrap();
        let after = ssd.read_page(f, 0, 5).unwrap();
        assert_ne!(before, after, "stale frame must not survive the write");
        assert_eq!(&after[..5], b"fresh");
    }

    #[test]
    fn truncate_invalidates_whole_file() {
        let (ssd, f) = dev_with_pages(3);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        ssd.read_batch(&[(f, 0, 4), (f, 1, 4), (f, 2, 4)]).unwrap();
        ssd.truncate(f).unwrap();
        assert_eq!(ssd.cache().unwrap().snapshot().resident_pages, 0);
        // A read past the new bound must fail: the cache cannot resurrect
        // truncated pages.
        assert!(ssd.read_page(f, 0, 0).is_err());
    }

    #[test]
    fn cross_tenant_hits_are_attributed() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::new(8)));
        let a = Arc::new(ssd.tenant_view(1));
        let b = Arc::new(ssd.tenant_view(2));
        a.read_page(f, 0, 8).unwrap();
        b.read_page(f, 0, 8).unwrap();
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.cross_tenant_hits, 1);
        assert_eq!(snap.tenant(1).misses, 1);
        assert_eq!(snap.tenant(2).hits, 1);
        assert_eq!(snap.tenant(2).misses, 0);
    }

    #[test]
    fn clock_evicts_unreferenced_frame_before_referenced_one() {
        let (ssd, f) = dev_with_pages(4);
        ssd.attach_cache(Arc::new(PageCache::new(2)));
        ssd.read_page(f, 0, 4).unwrap(); // frame 0 = page 0, referenced
        ssd.read_page(f, 1, 4).unwrap(); // frame 1 = page 1, referenced
        // Page 2 sweeps once (clearing both bits), evicts page 0, and
        // lands referenced; page 1's bit stays cleared.
        ssd.read_page(f, 2, 4).unwrap();
        // Page 3 must take the unreferenced frame (page 1) and give the
        // referenced page 2 its second chance.
        ssd.read_page(f, 3, 4).unwrap();
        ssd.stats().reset();
        ssd.read_page(f, 2, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 0, "page 2 stayed resident");
        ssd.read_page(f, 1, 4).unwrap();
        assert_eq!(ssd.stats().snapshot().pages_read, 1, "page 1 was the victim");
    }

    #[test]
    fn budget_sizing_clamps_to_one_frame() {
        let c = PageCache::for_budget(0, 4096);
        assert_eq!(c.capacity_pages(), 1);
        let c = PageCache::for_budget(10 * 4096, 4096);
        assert_eq!(c.capacity_pages(), 10);
    }
}

//! Submission/completion queues over the simulated device (io_uring shape).
//!
//! The paper's multi-log exists to exploit SSD internal parallelism, but the
//! plain [`Ssd`] read path is synchronous: each `read_batch` charges its full
//! channel-parallel service time to the caller at dispatch, so two batches
//! issued back-to-back serialize on the virtual clock even though a real
//! device would pipeline them across channels. `IoQueue` fixes that with an
//! explicit submission/completion model:
//!
//! * [`IoQueue::submit_read`] schedules every page of a batch onto its flash
//!   channel's virtual clock (same placement and sequential-run discount as
//!   [`batch_time_ns`]) and returns a [`Ticket`]. Channels keep servicing
//!   earlier tickets while later ones queue behind them — the overlap.
//! * Each channel holds at most `depth` outstanding page requests. A submit
//!   that would exceed the depth *stalls*: the submitter's clock advances to
//!   the completion of the oldest queued request, and the stall is charged
//!   as read wait. `depth` therefore never changes *when* a request
//!   completes, only when submission returns — queue depth 1 degenerates to
//!   the old synchronous charging.
//! * [`IoQueue::fetch`] moves the data with counts charged but **no**
//!   service time — the queue's clocks own time. Exactly one `read_batches`
//!   is charged per ticket, however many channels or cache passes serve it.
//!   `fetch` may run on any thread; the engine runs it on the prefetch
//!   workers. When a page cache is attached, the data is actually moved at
//!   *submit* time (plan order, owner thread) and `fetch` just hands it
//!   over — so the cache's hit/miss/eviction sequence is bit-identical for
//!   any worker-thread count.
//! * [`IoQueue::complete`] retires a ticket on the owner's clock, charging
//!   only the *remaining* wait `max(0, completion − now)`. Compute time the
//!   owner spends between completions is reported via [`IoQueue::advance`],
//!   which moves `now` forward so later completions overlap it.
//!
//! Determinism contract (DESIGN.md §16): `submit_read`, `complete` and
//! `advance` are called by the engine owner thread in plan order — the
//! completion-drain rule — so every virtual timestamp is a pure function of
//! the plan, independent of worker-thread count and wall-clock scheduling.
//!
//! [`batch_time_ns`]: crate::batch_time_ns

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::checked::to_u64;
use crate::cost::{channel_of, PageAddr};
use crate::device::{FileId, Ssd};
use crate::fault::DeviceError;
use crate::sync::Mutex;

/// Handle of one submitted read batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Per-superstep queue observability, drained by
/// [`IoQueue::take_wait_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueWaitStats {
    /// Virtual nanoseconds the owner spent blocked on the queue: submission
    /// stalls plus residual completion waits.
    pub io_wait_ns: u64,
    /// High-water mark of tickets submitted but not yet completed.
    pub max_inflight: u64,
}

struct TicketState {
    /// Virtual completion time of the last page of this ticket.
    completion: f64,
    /// Requests not yet fetched (`None` once [`IoQueue::fetch`] ran, or
    /// when the data was prefetched at submit).
    reqs: Option<Vec<(FileId, u64, usize)>>,
    /// Data eagerly moved at submit time when a page cache is attached
    /// (`None` otherwise, or once fetched). Keeping cache traffic on the
    /// plan-order submit path makes the cache's hit/miss/eviction sequence
    /// independent of which prefetch worker later calls [`IoQueue::fetch`]
    /// — the determinism contract extends to cache state.
    prefetched: Option<Result<Vec<Vec<u8>>, DeviceError>>,
}

struct QueueState {
    /// The owner's virtual clock.
    now: f64,
    /// When each channel finishes its last scheduled request.
    chan_free: Vec<f64>,
    /// Completion times of requests still queued per channel, oldest first
    /// (lazily pruned against the owner clock) — the depth gate.
    chan_q: Vec<VecDeque<f64>>,
    tickets: HashMap<u64, TicketState>,
    next_id: u64,
    inflight: u64,
    wait: QueueWaitStats,
}

/// A submission/completion queue over one [`Ssd`] view. See the module docs
/// for the model; one instance serves one engine run.
pub struct IoQueue {
    ssd: Arc<Ssd>,
    depth: usize,
    state: Mutex<QueueState>,
}

impl IoQueue {
    /// A queue of per-channel depth `depth` (clamped to at least 1) over
    /// `ssd`'s channels and cost model.
    pub fn new(ssd: Arc<Ssd>, depth: usize) -> Self {
        let channels = ssd.config().channels;
        IoQueue {
            ssd,
            depth: depth.max(1),
            state: Mutex::new(QueueState {
                now: 0.0,
                chan_free: vec![0.0; channels],
                chan_q: vec![VecDeque::new(); channels],
                tickets: HashMap::new(),
                next_id: 0,
                inflight: 0,
                wait: QueueWaitStats::default(),
            }),
        }
    }

    /// Per-channel queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Schedule a read batch onto the channel clocks and return its ticket.
    ///
    /// Owner-thread, plan-order only (see the module docs). Any submission
    /// stall is charged to the device's `read_time_ns` here.
    pub fn submit_read(&self, reqs: Vec<(FileId, u64, usize)>) -> Ticket {
        // With a cache attached, move the data *now*, on the plan-order
        // submit path, so the cache observes an identical request sequence
        // for any worker-thread count (counts charged, no service time —
        // same as a deferred fetch). No queue lock is held here.
        let prefetched = if self.ssd.cache().is_some() {
            Some(self.ssd.read_batch_deferred(&reqs))
        } else {
            None
        };
        let cfg = self.ssd.config();
        let channels = cfg.channels;
        let mut sorted: Vec<PageAddr> =
            reqs.iter().map(|&(f, p, _)| PageAddr::new(f, p)).collect();
        sorted.sort_unstable();

        let mut st = self.state.lock();
        let mut cursor = st.now;
        // Sequential-run state is per ticket, mirroring `batch_time_ns`
        // (each dispatch re-pays the run head).
        let mut chan_prev: Vec<Option<PageAddr>> = vec![None; channels];
        let mut completion = cursor;
        for &a in &sorted {
            let ch = channel_of(a, channels);
            // Depth gate: drop retired requests, then wait for the oldest
            // queued one whenever the channel is full.
            loop {
                while st.chan_q[ch].front().is_some_and(|&fin| fin <= cursor) {
                    st.chan_q[ch].pop_front();
                }
                if st.chan_q[ch].len() < self.depth {
                    break;
                }
                if let Some(fin) = st.chan_q[ch].pop_front() {
                    cursor = cursor.max(fin);
                }
            }
            let seq = matches!(
                chan_prev[ch],
                Some(p) if p.file == a.file && a.page > p.page && a.page - p.page <= to_u64(channels)
            );
            let cost = if seq {
                cfg.read_ns as f64 * cfg.seq_discount
            } else {
                cfg.read_ns as f64
            };
            let start = st.chan_free[ch].max(cursor);
            let fin = start + cost;
            st.chan_free[ch] = fin;
            st.chan_q[ch].push_back(fin);
            chan_prev[ch] = Some(a);
            completion = completion.max(fin);
        }
        // mlvc-lint: allow(no-truncating-cast) -- f64 has no TryFrom; virtual nanoseconds stay far below 2^53
        let stall = (cursor - st.now).round() as u64;
        if stall > 0 {
            st.now = cursor;
            st.wait.io_wait_ns += stall;
        }
        st.inflight += 1;
        st.wait.max_inflight = st.wait.max_inflight.max(st.inflight);
        let id = st.next_id;
        st.next_id += 1;
        let reqs = if prefetched.is_none() { Some(reqs) } else { None };
        st.tickets.insert(id, TicketState { completion, reqs, prefetched });
        drop(st);
        if stall > 0 {
            self.ssd.charge_read_wait(stall);
        }
        Ticket(id)
    }

    /// Move the data of a submitted ticket: counts are charged (one
    /// `read_batches` for the whole ticket), service time is not — the
    /// queue's clocks own it. Runs on any thread; fetching a ticket twice
    /// (or one this queue never issued) is an error.
    pub fn fetch(&self, ticket: Ticket) -> Result<Vec<Vec<u8>>, DeviceError> {
        let (reqs, prefetched) = {
            let mut st = self.state.lock();
            match st.tickets.get_mut(&ticket.0) {
                Some(t) => (t.reqs.take(), t.prefetched.take()),
                None => (None, None),
            }
        };
        if let Some(res) = prefetched {
            return res;
        }
        let Some(reqs) = reqs else {
            return Err(DeviceError::Io(format!(
                "ticket {} was never submitted or already fetched",
                ticket.0
            )));
        };
        self.ssd.read_batch_deferred(&reqs)
    }

    /// Retire a ticket on the owner clock, charging the residual wait
    /// `max(0, completion − now)` and returning it. Owner-thread, plan-order
    /// only. Completing an unknown ticket is a no-op returning 0.
    pub fn complete(&self, ticket: Ticket) -> u64 {
        let mut st = self.state.lock();
        let Some(t) = st.tickets.remove(&ticket.0) else {
            return 0;
        };
        // mlvc-lint: allow(no-truncating-cast) -- f64 has no TryFrom; virtual nanoseconds stay far below 2^53
        let wait = (t.completion - st.now).max(0.0).round() as u64;
        st.now = st.now.max(t.completion);
        st.inflight = st.inflight.saturating_sub(1);
        st.wait.io_wait_ns += wait;
        drop(st);
        self.ssd.charge_read_wait(wait);
        wait
    }

    /// Advance the owner clock by compute time spent since the last queue
    /// call — this is what lets in-flight tickets overlap compute.
    pub fn advance(&self, compute_ns: u64) {
        self.state.lock().now += compute_ns as f64;
    }

    /// Drain the wait statistics accumulated since the last call (one
    /// superstep's worth in the engine).
    pub fn take_wait_stats(&self) -> QueueWaitStats {
        let mut st = self.state.lock();
        let out = st.wait;
        st.wait = QueueWaitStats::default();
        st.wait.max_inflight = st.inflight;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::cost::batch_time_ns;
    use crate::PageCache;

    fn dev_with_file(pages: u64) -> (Arc<Ssd>, FileId) {
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let f = ssd.open_or_create("q").unwrap();
        for i in 0..pages {
            ssd.append_page(f, &[i as u8; 16]).unwrap();
        }
        ssd.stats().reset();
        (ssd, f)
    }

    fn reqs(f: FileId, pages: std::ops::Range<u64>) -> Vec<(FileId, u64, usize)> {
        pages.map(|p| (f, p, 8)).collect()
    }

    #[test]
    fn idle_queue_completion_equals_batch_time() {
        let (ssd, f) = dev_with_file(16);
        let q = IoQueue::new(Arc::clone(&ssd), 16);
        let r = reqs(f, 0..16);
        let addrs: Vec<PageAddr> = r.iter().map(|&(f, p, _)| PageAddr::new(f, p)).collect();
        let expect = batch_time_ns(ssd.config(), &addrs, ssd.config().read_ns);
        let t = q.submit_read(r);
        assert_eq!(q.complete(t), expect, "idle queue degenerates to batch_time_ns");
        assert_eq!(ssd.stats().snapshot().read_time_ns, expect);
    }

    #[test]
    fn fetch_charges_counts_once_per_ticket_and_no_time() {
        let (ssd, f) = dev_with_file(8);
        let q = IoQueue::new(Arc::clone(&ssd), 16);
        let t = q.submit_read(reqs(f, 0..8));
        let data = q.fetch(t).unwrap();
        assert_eq!(data.len(), 8);
        assert_eq!(&data[3][..16], &[3u8; 16]);
        let s = ssd.stats().snapshot();
        assert_eq!(s.pages_read, 8);
        assert_eq!(s.read_batches, 1, "one ticket = one read batch");
        assert_eq!(s.read_time_ns, 0, "fetch charges no service time");
        assert!(q.complete(t) > 0, "time lands at completion");
    }

    #[test]
    fn double_fetch_is_a_typed_error() {
        let (ssd, f) = dev_with_file(2);
        let q = IoQueue::new(ssd, 16);
        let t = q.submit_read(reqs(f, 0..2));
        q.fetch(t).unwrap();
        assert!(matches!(q.fetch(t), Err(DeviceError::Io(_))));
    }

    #[test]
    fn compute_between_completions_overlaps_io() {
        let (ssd, f) = dev_with_file(16);
        // Serial charging: two batches back to back.
        let addrs =
            |r: std::ops::Range<u64>| r.map(|p| PageAddr::new(f, p)).collect::<Vec<_>>();
        let t1 = batch_time_ns(ssd.config(), &addrs(0..8), ssd.config().read_ns);
        let t2 = batch_time_ns(ssd.config(), &addrs(8..16), ssd.config().read_ns);

        let q = IoQueue::new(Arc::clone(&ssd), 16);
        let a = q.submit_read(reqs(f, 0..8));
        let b = q.submit_read(reqs(f, 8..16));
        let w1 = q.complete(a);
        q.advance(t2 * 2); // long compute while b is still in flight
        let w2 = q.complete(b);
        assert_eq!(w2, 0, "b finished during compute — fully hidden");
        assert!(
            w1 + w2 < t1 + t2,
            "queue wait {w1}+{w2} must undercut serial {t1}+{t2}"
        );
        assert_eq!(ssd.stats().snapshot().read_time_ns, w1 + w2);
    }

    #[test]
    fn shallow_queue_stalls_submission_but_keeps_completions() {
        let (ssd, f) = dev_with_file(64);
        // Total drain time with no compute is depth-invariant: stalls only
        // shift wait from completion time to submission time.
        let mut totals = Vec::new();
        for depth in [1usize, 4, 16] {
            ssd.stats().reset();
            let q = IoQueue::new(Arc::clone(&ssd), depth);
            let tickets: Vec<Ticket> =
                (0..4).map(|i| q.submit_read(reqs(f, i * 16..(i + 1) * 16))).collect();
            for t in tickets {
                q.complete(t);
            }
            totals.push(ssd.stats().snapshot().read_time_ns);
        }
        assert_eq!(totals[0], totals[1], "depth must not change total drain time");
        assert_eq!(totals[1], totals[2], "depth must not change total drain time");

        // And depth 1 does stall at submit: time is charged before any
        // completion once the channels are saturated.
        ssd.stats().reset();
        let q = IoQueue::new(Arc::clone(&ssd), 1);
        let _a = q.submit_read(reqs(f, 0..16));
        let _b = q.submit_read(reqs(f, 16..32));
        assert!(
            ssd.stats().snapshot().read_time_ns > 0,
            "submission past depth 1 must stall"
        );
    }

    #[test]
    fn wait_stats_track_inflight_high_water() {
        let (ssd, f) = dev_with_file(8);
        let q = IoQueue::new(ssd, 16);
        let a = q.submit_read(reqs(f, 0..4));
        let b = q.submit_read(reqs(f, 4..8));
        q.complete(a);
        q.complete(b);
        let w = q.take_wait_stats();
        assert_eq!(w.max_inflight, 2);
        assert!(w.io_wait_ns > 0);
        let w2 = q.take_wait_stats();
        assert_eq!(w2, QueueWaitStats::default(), "stats drain");
    }

    #[test]
    fn cached_fetch_keeps_serve_identity_per_ticket() {
        let (ssd, f) = dev_with_file(8);
        ssd.attach_cache(Arc::new(PageCache::new(32)));
        let q = IoQueue::new(Arc::clone(&ssd), 16);
        let a = q.submit_read(reqs(f, 0..8));
        q.fetch(a).unwrap();
        q.complete(a);
        let cold = ssd.stats().snapshot();
        assert_eq!(cold.read_batches, 1, "one fill batch for the whole ticket");
        assert_eq!(cold.pages_read, 8);
        // Second ticket over the same pages: all hits, no device reads, and
        // the cache identity hits + cached reads == uncached reads holds.
        let b = q.submit_read(reqs(f, 0..8));
        q.fetch(b).unwrap();
        q.complete(b);
        let warm = ssd.stats().snapshot();
        assert_eq!(warm.pages_read, 8, "hits charge no device pages");
        let snap = ssd.cache().unwrap().snapshot();
        assert_eq!(snap.tenant(0).hits + warm.pages_read, 16, "serve identity");
    }
}

//! Flash translation layer model: logical-to-physical mapping, erase
//! blocks, and greedy garbage collection.
//!
//! The paper's multi-log design is friendly to flash precisely because it
//! writes *sequentially within append-only logs* and frees whole extents
//! at once (logs are truncated after each superstep). In-place designs
//! (GraphChi writes back shard pages in place) force the FTL to relocate
//! still-live pages when reclaiming blocks — device-level write
//! amplification on top of the host traffic.
//!
//! [`FtlModel`] replays a host-level page trace (writes, overwrites,
//! trims) against a device of configurable geometry and reports physical
//! program counts, erase counts, and the resulting write-amplification
//! factor. It is deliberately offline — experiments feed it the
//! [`crate::SsdStats`]-adjacent trace recorded by the engines — so the hot
//! I/O path stays cheap.

use std::collections::HashMap;


/// Logical page address used by the FTL replay: (file, page index).
pub type Lpa = (u32, u64);

/// One host-level event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlOp {
    /// Program a logical page (fresh write or in-place overwrite).
    Write(Lpa),
    /// Invalidate a logical page (file truncation / deletion).
    Trim(Lpa),
}

/// Device geometry and GC policy for the replay.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// Pages per erase block (flash blocks hold 64–256 pages; default 128).
    pub pages_per_block: usize,
    /// Total blocks in the device.
    pub blocks: usize,
    /// GC kicks in when free blocks fall to this count (default 2).
    pub gc_low_watermark: usize,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig { pages_per_block: 128, blocks: 256, gc_low_watermark: 2 }
    }
}

/// Replay outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host-issued page programs.
    pub host_writes: u64,
    /// Physical page programs (host + GC relocations).
    pub physical_writes: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Live pages relocated by garbage collection.
    pub gc_relocations: u64,
}

impl FtlStats {
    /// Device write amplification: physical programs per host program.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.physical_writes as f64 / self.host_writes as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Valid(Lpa),
    Invalid,
}

/// Greedy-GC page-mapping FTL with hot/cold separation: host writes and
/// GC relocations fill *separate* open blocks, the standard defense
/// against re-mixing cold survivors with hot traffic.
pub struct FtlModel {
    cfg: FtlConfig,
    /// Physical pages, indexed `block * pages_per_block + offset`.
    pages: Vec<PageState>,
    /// Valid-page count per block.
    live: Vec<usize>,
    /// Logical → physical map.
    map: HashMap<Lpa, usize>,
    /// Host write frontier: block being filled and its next free offset.
    open_block: usize,
    write_ptr: usize,
    /// GC relocation frontier (`None` until the first relocation).
    gc_block: Option<usize>,
    gc_ptr: usize,
    free_blocks: Vec<usize>,
    stats: FtlStats,
}

impl FtlModel {
    pub fn new(cfg: FtlConfig) -> Self {
        assert!(cfg.blocks > cfg.gc_low_watermark + 1);
        assert!(cfg.pages_per_block >= 1);
        let free_blocks: Vec<usize> = (1..cfg.blocks).rev().collect();
        FtlModel {
            pages: vec![PageState::Free; cfg.blocks * cfg.pages_per_block],
            live: vec![0; cfg.blocks],
            cfg,
            map: HashMap::new(),
            open_block: 0,
            write_ptr: 0,
            gc_block: None,
            gc_ptr: 0,
            free_blocks,
            stats: FtlStats::default(),
        }
    }

    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Fraction of device pages currently holding valid data.
    pub fn occupancy(&self) -> f64 {
        self.map.len() as f64 / self.pages.len() as f64
    }

    /// Replay a whole trace.
    pub fn replay<'a>(&mut self, ops: impl IntoIterator<Item = &'a FtlOp>) {
        for op in ops {
            match *op {
                FtlOp::Write(lpa) => self.write(lpa),
                FtlOp::Trim(lpa) => self.trim(lpa),
            }
        }
    }

    /// Host write: invalidate the old physical copy (if any) and program
    /// the next page of the open block.
    pub fn write(&mut self, lpa: Lpa) {
        self.stats.host_writes += 1;
        self.invalidate(lpa);
        self.program(lpa);
    }

    /// Host trim: drop the logical page without programming anything.
    pub fn trim(&mut self, lpa: Lpa) {
        self.invalidate(lpa);
    }

    fn invalidate(&mut self, lpa: Lpa) {
        if let Some(ppa) = self.map.remove(&lpa) {
            self.pages[ppa] = PageState::Invalid;
            self.live[ppa / self.cfg.pages_per_block] -= 1;
        }
    }

    fn program(&mut self, lpa: Lpa) {
        if self.write_ptr == self.cfg.pages_per_block {
            self.advance_open_block();
        }
        let ppa = self.open_block * self.cfg.pages_per_block + self.write_ptr;
        self.write_ptr += 1;
        debug_assert!(matches!(self.pages[ppa], PageState::Free));
        self.pages[ppa] = PageState::Valid(lpa);
        self.live[self.open_block] += 1;
        self.map.insert(lpa, ppa);
        self.stats.physical_writes += 1;
    }

    fn program_gc(&mut self, lpa: Lpa) {
        let ppb = self.cfg.pages_per_block;
        let b = match self.gc_block {
            Some(b) if self.gc_ptr < ppb => b,
            _ => {
                // mlvc-lint: allow(no-panic-in-lib) -- no room for GC relocations means the device was sized wrong; abort
                let b = self.free_blocks.pop().expect("GC found no room for relocations");
                self.gc_block = Some(b);
                self.gc_ptr = 0;
                b
            }
        };
        let ppa = b * ppb + self.gc_ptr;
        self.gc_ptr += 1;
        debug_assert!(matches!(self.pages[ppa], PageState::Free));
        self.pages[ppa] = PageState::Valid(lpa);
        self.live[b] += 1;
        self.map.insert(lpa, ppa);
        self.stats.physical_writes += 1;
        self.stats.gc_relocations += 1;
    }

    fn advance_open_block(&mut self) {
        while self.free_blocks.len() <= self.cfg.gc_low_watermark {
            if !self.collect_garbage() {
                break; // no block would yield free space
            }
        }
        self.open_block = self
            .free_blocks
            .pop()
            // mlvc-lint: allow(no-panic-in-lib) -- a trace exceeding physical capacity is a configuration error; abort
            .expect("device full: trace exceeds physical capacity + over-provisioning");
        self.write_ptr = 0;
    }

    /// Greedy GC: erase the closed block with the fewest valid pages,
    /// relocating survivors through the GC frontier. Returns false when no
    /// candidate would yield space (all closed blocks fully live).
    fn collect_garbage(&mut self) -> bool {
        let ppb = self.cfg.pages_per_block;
        let victim = (0..self.cfg.blocks)
            .filter(|&b| {
                b != self.open_block
                    && Some(b) != self.gc_block
                    && !self.free_blocks.contains(&b)
                    && self.block_programmed(b)
            })
            .min_by_key(|&b| self.live[b]);
        let Some(victim) = victim else { return false };
        if self.live[victim] == ppb {
            return false; // erasing a fully live block gains nothing
        }
        let survivors: Vec<Lpa> = (0..ppb)
            .filter_map(|k| match self.pages[victim * ppb + k] {
                PageState::Valid(lpa) => Some(lpa),
                _ => None,
            })
            .collect();
        for k in 0..ppb {
            self.pages[victim * ppb + k] = PageState::Free;
        }
        self.live[victim] = 0;
        self.stats.erases += 1;
        self.free_blocks.insert(0, victim);
        for lpa in survivors {
            self.map.remove(&lpa);
            self.program_gc(lpa);
        }
        true
    }

    fn block_programmed(&self, b: usize) -> bool {
        let ppb = self.cfg.pages_per_block;
        let full = (0..ppb).all(|k| !matches!(self.pages[b * ppb + k], PageState::Free));
        // The GC frontier counts as closed once full.
        full || (Some(b) == self.gc_block && self.gc_ptr == ppb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FtlModel {
        FtlModel::new(FtlConfig { pages_per_block: 4, blocks: 8, gc_low_watermark: 2 })
    }

    #[test]
    fn sequential_append_and_trim_has_no_amplification() {
        // The multi-log pattern: append a log, consume it, trim it, repeat.
        let mut ftl = small();
        for round in 0..20u64 {
            for p in 0..8u64 {
                ftl.write((0, round * 8 + p));
            }
            for p in 0..8u64 {
                ftl.trim((0, round * 8 + p));
            }
        }
        let s = ftl.stats();
        assert_eq!(s.host_writes, 160);
        assert_eq!(
            s.gc_relocations, 0,
            "trimmed extents leave nothing to relocate"
        );
        assert!((s.write_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn in_place_overwrites_of_hot_pages_amplify() {
        // The in-place pattern: a working set that fits the device but is
        // rewritten repeatedly, with a cold resident set pinning blocks.
        let mut ftl = small();
        // Cold data filling half the device.
        for p in 0..16u64 {
            ftl.write((1, p));
        }
        // Hot overwrites.
        for round in 0..50u64 {
            for p in 0..6u64 {
                ftl.write((2, p));
            }
            let _ = round;
        }
        let s = ftl.stats();
        assert!(s.erases > 0, "GC must have run");
        assert!(
            s.gc_relocations > 0,
            "cold pages must have been relocated"
        );
        assert!(
            s.write_amplification() > 1.05,
            "WA {}",
            s.write_amplification()
        );
    }

    #[test]
    fn map_always_points_at_latest_version() {
        let mut ftl = small();
        for round in 0..30u64 {
            ftl.write((3, 7));
            let _ = round;
        }
        // Exactly one valid copy lives on the device.
        let valid = ftl
            .pages
            .iter()
            .filter(|p| matches!(p, PageState::Valid(lpa) if *lpa == (3, 7)))
            .count();
        assert_eq!(valid, 1);
        assert_eq!(ftl.stats().host_writes, 30);
    }

    #[test]
    fn occupancy_tracks_live_data() {
        let mut ftl = small();
        assert_eq!(ftl.occupancy(), 0.0);
        for p in 0..8u64 {
            ftl.write((0, p));
        }
        assert!((ftl.occupancy() - 8.0 / 32.0).abs() < 1e-9);
        for p in 0..4u64 {
            ftl.trim((0, p));
        }
        assert!((ftl.occupancy() - 4.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn overfilling_the_device_panics() {
        let mut ftl = small();
        for p in 0..33u64 {
            ftl.write((0, p)); // 33 live pages > 32 physical
        }
    }

    #[test]
    fn replay_matches_manual_calls() {
        let ops = vec![
            FtlOp::Write((0, 1)),
            FtlOp::Write((0, 2)),
            FtlOp::Write((0, 1)),
            FtlOp::Trim((0, 2)),
        ];
        let mut a = small();
        a.replay(&ops);
        let mut b = small();
        for op in &ops {
            match *op {
                FtlOp::Write(l) => b.write(l),
                FtlOp::Trim(l) => b.trim(l),
            }
        }
        assert_eq!(a.stats(), b.stats());
    }
}

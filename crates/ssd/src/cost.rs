use crate::checked::{mem_idx, to_u64, wide};
use crate::config::SsdConfig;
use crate::device::FileId;

/// Address of one page: a file and a page index within it.
///
/// Channel placement is a pure function of the address (see [`channel_of`]),
/// which stripes consecutive pages of a file across all channels — the
/// paper's log layout ("each log is interspersed across multiple channels to
/// maximize the read bandwidth", §V-A3) and the natural layout for large
/// sequential CSR vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    pub file: FileId,
    pub page: u64,
}

impl PageAddr {
    pub fn new(file: FileId, page: u64) -> Self {
        PageAddr { file, page }
    }
}

/// Flash channel servicing a given page.
pub fn channel_of(addr: PageAddr, channels: usize) -> usize {
    debug_assert!(channels >= 1);
    // The modulo result is below `channels`, itself a usize, so the
    // narrowing back is lossless by construction.
    mem_idx(wide(addr.file).wrapping_mul(31).wrapping_add(addr.page) % to_u64(channels))
}

/// Simulated service time for a *batch* of page requests issued together.
///
/// Model: each page is serviced by its channel; channels operate in
/// parallel, so batch time is the maximum per-channel time. Within one
/// channel, a page that continues a sequential run (same file, page index
/// exactly one past the previous page on that channel within the batch) is
/// charged `per_page_ns * seq_discount`; run heads are charged full price.
///
/// The batch is sorted internally, so callers may pass addresses in any
/// order — an I/O scheduler would do the same reordering.
pub fn batch_time_ns(cfg: &SsdConfig, addrs: &[PageAddr], per_page_ns: u64) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    let channels = cfg.channels;
    let mut sorted: Vec<PageAddr> = addrs.to_vec();
    sorted.sort_unstable();

    // Per-channel accumulated time in femto-ish fixed point: use f64 and
    // round once at the end; batch sizes are bounded by available memory so
    // precision is ample.
    let mut chan_time = vec![0.0f64; channels];
    let mut chan_prev: Vec<Option<PageAddr>> = vec![None; channels];
    for &a in &sorted {
        let ch = channel_of(a, channels);
        let seq = matches!(
            chan_prev[ch],
            Some(p) if p.file == a.file && a.page > p.page && a.page - p.page <= to_u64(channels)
        );
        // Striding by `channels` pages within the same file keeps hitting the
        // same channel with (nearly) consecutive physical pages — that is what
        // a sequential stream striped across channels looks like per-channel —
        // hence the `<= channels` run test above.
        let cost = if seq {
            per_page_ns as f64 * cfg.seq_discount
        } else {
            per_page_ns as f64
        };
        chan_time[ch] += cost;
        chan_prev[ch] = Some(a);
    }
    // mlvc-lint: allow(no-truncating-cast) -- f64 has no TryFrom<u64>; nanosecond totals stay far below 2^53
    chan_time.iter().cloned().fold(0.0, f64::max).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(channels: usize) -> SsdConfig {
        SsdConfig::default().with_channels(channels)
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(batch_time_ns(&cfg(8), &[], 100), 0);
    }

    #[test]
    fn single_page_costs_full_service_time() {
        let t = batch_time_ns(&cfg(8), &[PageAddr::new(0, 0)], 100_000);
        assert_eq!(t, 100_000);
    }

    #[test]
    fn channel_parallelism_caps_batch_time() {
        // 8 pages striped over 8 channels take ~1 service time, not 8.
        let c = cfg(8);
        let addrs: Vec<_> = (0..8).map(|i| PageAddr::new(0, i)).collect();
        let t = batch_time_ns(&c, &addrs, 100_000);
        assert!(t <= 100_000, "parallel channels should overlap: {t}");
    }

    #[test]
    fn one_channel_serializes() {
        let c = cfg(1);
        let addrs: Vec<_> = (0..8).map(|i| PageAddr::new(0, i)).collect();
        let t = batch_time_ns(&c, &addrs, 100_000);
        // One head at full price + 7 sequential continuations discounted.
        let expect = (100_000.0 + 7.0 * 100_000.0 * c.seq_discount).round() as u64;
        assert_eq!(t, expect);
    }

    #[test]
    fn random_pages_cost_more_than_sequential() {
        let c = cfg(4);
        let seq: Vec<_> = (0..64).map(|i| PageAddr::new(3, i)).collect();
        // Same page count, scattered across distant offsets of many files.
        let rnd: Vec<_> = (0..64)
            .map(|i| PageAddr::new((i % 7) as u32, (i as u64 * 977) % 10_000))
            .collect();
        let ts = batch_time_ns(&c, &seq, 100_000);
        let tr = batch_time_ns(&c, &rnd, 100_000);
        assert!(ts < tr, "sequential {ts} should beat random {tr}");
    }

    #[test]
    fn order_of_requests_does_not_matter() {
        let c = cfg(4);
        let mut addrs: Vec<_> = (0..32).map(|i| PageAddr::new(1, i)).collect();
        let t1 = batch_time_ns(&c, &addrs, 100_000);
        addrs.reverse();
        let t2 = batch_time_ns(&c, &addrs, 100_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn channel_of_is_stable_and_in_range() {
        for f in 0..20u32 {
            for p in 0..100u64 {
                let ch = channel_of(PageAddr::new(f, p), 8);
                assert!(ch < 8);
                assert_eq!(ch, channel_of(PageAddr::new(f, p), 8));
            }
        }
    }

    #[test]
    fn consecutive_pages_cover_all_channels() {
        // Striping: a long run of consecutive pages should touch every channel.
        let mut seen = [false; 8];
        for p in 0..64u64 {
            seen[channel_of(PageAddr::new(5, p), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "stripe must spread across channels");
    }
}

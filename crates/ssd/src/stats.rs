use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic statistics counter: an `AtomicU64` whose operations are
/// intentionally `Relaxed`.
///
/// This is the one sanctioned home of relaxed atomics outside the
/// `mlvc-obs` metrics registry (the `no-relaxed-ordering-outside-obs`
/// lint). The contract is the same one PR 4 defined for the registry:
/// counters are *statistics*, read for reporting after a synchronization
/// point (a join, a lock release) that the engine provides anyway, so
/// per-operation ordering buys nothing — and anything that is not a pure
/// statistic must not use this type.
#[derive(Debug, Default)]
pub struct RelaxedCounter(AtomicU64);

impl RelaxedCounter {
    pub const fn new(value: u64) -> Self {
        RelaxedCounter(AtomicU64::new(value))
    }

    pub fn add(&self, delta: u64) {
        // mlvc-lint: allow(no-relaxed-ordering-outside-obs) -- statistics counter; readers synchronize via join/lock edges
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn sub(&self, delta: u64) {
        // mlvc-lint: allow(no-relaxed-ordering-outside-obs) -- statistics counter; readers synchronize via join/lock edges
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // mlvc-lint: allow(no-relaxed-ordering-outside-obs) -- statistics counter; readers synchronize via join/lock edges
        self.0.load(Ordering::Relaxed)
    }

    pub fn set(&self, value: u64) {
        // mlvc-lint: allow(no-relaxed-ordering-outside-obs) -- statistics counter; readers synchronize via join/lock edges
        self.0.store(value, Ordering::Relaxed);
    }
}

/// Live counters of device activity. All counters are monotonically
/// increasing [`RelaxedCounter`]s so engines may account I/O from worker
/// threads.
///
/// `useful_bytes_read` is declared by callers: a reader that fetches a 16 KB
/// page to consume one 8-byte adjacency entry reports 8 useful bytes. The
/// ratio `bytes_read / useful_bytes_read` is the read amplification the
/// paper's Fig. 3 and the edge-log optimizer are about.
#[derive(Debug, Default)]
pub struct SsdStats {
    pub pages_read: RelaxedCounter,
    pub pages_written: RelaxedCounter,
    pub bytes_read: RelaxedCounter,
    pub bytes_written: RelaxedCounter,
    pub useful_bytes_read: RelaxedCounter,
    /// Simulated time spent servicing reads, nanoseconds.
    pub read_time_ns: RelaxedCounter,
    /// Simulated time spent servicing writes, nanoseconds.
    pub write_time_ns: RelaxedCounter,
    /// Number of read batches issued (each batch = one parallel dispatch).
    pub read_batches: RelaxedCounter,
    /// Number of write batches issued.
    pub write_batches: RelaxedCounter,
}

impl SsdStats {
    pub fn snapshot(&self) -> SsdStatsSnapshot {
        SsdStatsSnapshot {
            pages_read: self.pages_read.get(),
            pages_written: self.pages_written.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            useful_bytes_read: self.useful_bytes_read.get(),
            read_time_ns: self.read_time_ns.get(),
            write_time_ns: self.write_time_ns.get(),
            read_batches: self.read_batches.get(),
            write_batches: self.write_batches.get(),
        }
    }

    pub fn reset(&self) {
        self.pages_read.set(0);
        self.pages_written.set(0);
        self.bytes_read.set(0);
        self.bytes_written.set(0);
        self.useful_bytes_read.set(0);
        self.read_time_ns.set(0);
        self.write_time_ns.set(0);
        self.read_batches.set(0);
        self.write_batches.set(0);
    }
}

/// Point-in-time copy of [`SsdStats`], with derived metrics. Subtract two
/// snapshots to get the activity of one phase or superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdStatsSnapshot {
    pub pages_read: u64,
    pub pages_written: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub useful_bytes_read: u64,
    pub read_time_ns: u64,
    pub write_time_ns: u64,
    pub read_batches: u64,
    pub write_batches: u64,
}

impl SsdStatsSnapshot {
    /// Total simulated I/O time, nanoseconds.
    pub fn io_time_ns(&self) -> u64 {
        self.read_time_ns + self.write_time_ns
    }

    /// Read amplification: fetched bytes per useful byte (≥ 1 whenever any
    /// useful byte was declared; `None` if nothing useful was read).
    pub fn read_amplification(&self) -> Option<f64> {
        if self.useful_bytes_read == 0 {
            None
        } else {
            Some(self.bytes_read as f64 / self.useful_bytes_read as f64)
        }
    }

    /// Activity between an earlier snapshot `start` and `self`.
    pub fn since(&self, start: &SsdStatsSnapshot) -> SsdStatsSnapshot {
        SsdStatsSnapshot {
            pages_read: self.pages_read - start.pages_read,
            pages_written: self.pages_written - start.pages_written,
            bytes_read: self.bytes_read - start.bytes_read,
            bytes_written: self.bytes_written - start.bytes_written,
            useful_bytes_read: self.useful_bytes_read - start.useful_bytes_read,
            read_time_ns: self.read_time_ns - start.read_time_ns,
            write_time_ns: self.write_time_ns - start.write_time_ns,
            read_batches: self.read_batches - start.read_batches,
            write_batches: self.write_batches - start.write_batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = SsdStats::default();
        s.pages_read.set(10);
        s.bytes_read.set(160);
        let a = s.snapshot();
        s.pages_read.set(25);
        s.bytes_read.set(400);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_read, 15);
        assert_eq!(d.bytes_read, 240);
    }

    #[test]
    fn amplification() {
        let mut s = SsdStatsSnapshot::default();
        assert_eq!(s.read_amplification(), None);
        s.bytes_read = 16384;
        s.useful_bytes_read = 1024;
        assert_eq!(s.read_amplification(), Some(16.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = SsdStats::default();
        s.pages_read.set(5);
        s.write_time_ns.set(7);
        s.reset();
        assert_eq!(s.snapshot(), SsdStatsSnapshot::default());
    }

    #[test]
    fn relaxed_counter_ops() {
        let c = RelaxedCounter::new(10);
        c.add(5);
        c.sub(3);
        assert_eq!(c.get(), 12);
        c.set(0);
        assert_eq!(c.get(), 0);
    }
}

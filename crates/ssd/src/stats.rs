use std::sync::atomic::{AtomicU64, Ordering};


/// Live counters of device activity. All counters are monotonically
/// increasing atomics so engines may account I/O from worker threads.
///
/// `useful_bytes_read` is declared by callers: a reader that fetches a 16 KB
/// page to consume one 8-byte adjacency entry reports 8 useful bytes. The
/// ratio `bytes_read / useful_bytes_read` is the read amplification the
/// paper's Fig. 3 and the edge-log optimizer are about.
#[derive(Debug, Default)]
pub struct SsdStats {
    pub pages_read: AtomicU64,
    pub pages_written: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub useful_bytes_read: AtomicU64,
    /// Simulated time spent servicing reads, nanoseconds.
    pub read_time_ns: AtomicU64,
    /// Simulated time spent servicing writes, nanoseconds.
    pub write_time_ns: AtomicU64,
    /// Number of read batches issued (each batch = one parallel dispatch).
    pub read_batches: AtomicU64,
    /// Number of write batches issued.
    pub write_batches: AtomicU64,
}

impl SsdStats {
    pub fn snapshot(&self) -> SsdStatsSnapshot {
        SsdStatsSnapshot {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            useful_bytes_read: self.useful_bytes_read.load(Ordering::Relaxed),
            read_time_ns: self.read_time_ns.load(Ordering::Relaxed),
            write_time_ns: self.write_time_ns.load(Ordering::Relaxed),
            read_batches: self.read_batches.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.useful_bytes_read.store(0, Ordering::Relaxed);
        self.read_time_ns.store(0, Ordering::Relaxed);
        self.write_time_ns.store(0, Ordering::Relaxed);
        self.read_batches.store(0, Ordering::Relaxed);
        self.write_batches.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`SsdStats`], with derived metrics. Subtract two
/// snapshots to get the activity of one phase or superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdStatsSnapshot {
    pub pages_read: u64,
    pub pages_written: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub useful_bytes_read: u64,
    pub read_time_ns: u64,
    pub write_time_ns: u64,
    pub read_batches: u64,
    pub write_batches: u64,
}

impl SsdStatsSnapshot {
    /// Total simulated I/O time, nanoseconds.
    pub fn io_time_ns(&self) -> u64 {
        self.read_time_ns + self.write_time_ns
    }

    /// Read amplification: fetched bytes per useful byte (≥ 1 whenever any
    /// useful byte was declared; `None` if nothing useful was read).
    pub fn read_amplification(&self) -> Option<f64> {
        if self.useful_bytes_read == 0 {
            None
        } else {
            Some(self.bytes_read as f64 / self.useful_bytes_read as f64)
        }
    }

    /// Activity between an earlier snapshot `start` and `self`.
    pub fn since(&self, start: &SsdStatsSnapshot) -> SsdStatsSnapshot {
        SsdStatsSnapshot {
            pages_read: self.pages_read - start.pages_read,
            pages_written: self.pages_written - start.pages_written,
            bytes_read: self.bytes_read - start.bytes_read,
            bytes_written: self.bytes_written - start.bytes_written,
            useful_bytes_read: self.useful_bytes_read - start.useful_bytes_read,
            read_time_ns: self.read_time_ns - start.read_time_ns,
            write_time_ns: self.write_time_ns - start.write_time_ns,
            read_batches: self.read_batches - start.read_batches,
            write_batches: self.write_batches - start.write_batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = SsdStats::default();
        s.pages_read.store(10, Ordering::Relaxed);
        s.bytes_read.store(160, Ordering::Relaxed);
        let a = s.snapshot();
        s.pages_read.store(25, Ordering::Relaxed);
        s.bytes_read.store(400, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_read, 15);
        assert_eq!(d.bytes_read, 240);
    }

    #[test]
    fn amplification() {
        let mut s = SsdStatsSnapshot::default();
        assert_eq!(s.read_amplification(), None);
        s.bytes_read = 16384;
        s.useful_bytes_read = 1024;
        assert_eq!(s.read_amplification(), Some(16.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = SsdStats::default();
        s.pages_read.store(5, Ordering::Relaxed);
        s.write_time_ns.store(7, Ordering::Relaxed);
        s.reset();
        assert_eq!(s.snapshot(), SsdStatsSnapshot::default());
    }
}

//! Deterministic, seeded fault injection for the simulated device.
//!
//! The recovery subsystem (`mlvc-recover`) needs crashes it can replay: a
//! crash point must be a pure function of the fault plan, never of host
//! time or scheduling. A [`FaultPlan`] therefore describes faults in terms
//! of the device's own operation counters:
//!
//! * **Crash after N page writes** — the Nth successful page write is
//!   *torn*: only a seed-derived prefix of the payload reaches the media
//!   (the rest of the page reads back as zeroes), after which the device
//!   enters a crashed state where every operation fails with
//!   [`DeviceError::Crashed`] until [`crate::Ssd::revive`] is called. This
//!   models power loss mid-program: flash pages are not atomically
//!   written, so the page being programmed at the instant of the crash is
//!   garbage while everything before it is durable.
//! * **Transient read faults** — every `period`-th page read raises a
//!   streak of read failures. The device retries internally up to a
//!   bounded retry count, charging one extra page-read service time per
//!   retry on the virtual clock; a streak that outlasts the bound surfaces
//!   as [`DeviceError::ReadUnavailable`]. This models the recoverable
//!   (ECC retry / read-retry voltage shift) and unrecoverable flavors of
//!   flash read errors.
//!
//! Everything is driven by counters and a splitmix64 hash of the plan
//! seed, so replaying the same plan against the same workload produces the
//! same torn byte count at the same page — the property the crash-point
//! sweep in `tests/crash_recovery.rs` is built on.

use crate::checked::mem_idx;
use crate::device::FileId;

/// Typed failure of a simulated-device operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device crashed (fault-plan trigger). Every subsequent operation
    /// fails with this error until [`crate::Ssd::revive`].
    Crashed,
    /// A transient read fault outlasted the device's internal retry bound.
    ReadUnavailable { file: FileId, page: u64, retries: u32 },
    /// Page index beyond the end of the file.
    OutOfBounds { file: FileId, page: u64 },
    /// Operation on a deleted file id.
    Deleted { file: FileId },
    /// Payload longer than the device page size.
    PayloadTooLarge { len: usize, page_size: usize },
    /// Host filesystem failure in the file-backed store.
    Io(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Crashed => write!(f, "device crashed (fault injection)"),
            DeviceError::ReadUnavailable { file, page, retries } => write!(
                f,
                "page {page} of file {file} unreadable after {retries} retries"
            ),
            DeviceError::OutOfBounds { file, page } => {
                write!(f, "page {page} out of bounds in file {file}")
            }
            DeviceError::Deleted { file } => write!(f, "file {file} is deleted"),
            DeviceError::PayloadTooLarge { len, page_size } => {
                write!(f, "payload of {len} bytes exceeds the {page_size}-byte page")
            }
            DeviceError::Io(msg) => write!(f, "host I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A deterministic fault schedule. Install with
/// [`crate::Ssd::install_fault_plan`]; clear with [`crate::Ssd::revive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the torn-page split point (and any future randomized
    /// fault parameters). Same seed + same workload = same damage.
    pub seed: u64,
    /// Crash on the Nth page write counted from plan installation
    /// (1-based): that write is torn, later operations fail. `None`
    /// disables crashing.
    pub crash_after_writes: Option<u64>,
    /// Every Nth page read (counted from installation) raises a streak of
    /// transient faults. `None` disables read faults.
    pub read_fault_period: Option<u64>,
    /// Consecutive failures at each read-fault point.
    pub read_fault_streak: u32,
    /// Device-internal retry bound. A streak within the bound succeeds
    /// after charging that many extra page-read times; a longer streak
    /// surfaces as [`DeviceError::ReadUnavailable`].
    pub max_read_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crash_after_writes: None,
            read_fault_period: None,
            read_fault_streak: 1,
            max_read_retries: 3,
        }
    }
}

impl FaultPlan {
    /// A plan that crashes the device on its `n`-th page write (1-based),
    /// tearing that page at a `seed`-derived byte offset.
    pub fn crash_after(n: u64, seed: u64) -> Self {
        FaultPlan { seed, crash_after_writes: Some(n), ..FaultPlan::default() }
    }

    /// Add transient read faults: every `period`-th page read fails
    /// `streak` consecutive times before (possibly) succeeding.
    pub fn with_read_faults(mut self, period: u64, streak: u32) -> Self {
        assert!(period >= 1, "read fault period must be at least 1");
        self.read_fault_period = Some(period);
        self.read_fault_streak = streak;
        self
    }

    /// Override the device-internal read retry bound.
    pub fn with_max_read_retries(mut self, n: u32) -> Self {
        self.max_read_retries = n;
        self
    }
}

/// Cumulative fault-activity counters (survive plan install/revive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Page writes observed by the fault layer (viable writes only:
    /// precondition failures are not counted).
    pub page_writes: u64,
    /// Page reads observed by the fault layer.
    pub page_reads: u64,
    /// Torn pages written at crash points.
    pub torn_writes: u64,
    /// Crashes triggered.
    pub crashes: u64,
    /// Transient read-fault points hit.
    pub transient_read_faults: u64,
    /// Extra page-read retries charged to the virtual clock.
    pub retries_charged: u64,
}

/// splitmix64: a tiny, high-quality mixer for deriving the torn-page
/// split point from (seed, write index) with no RNG state.
fn mix(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the fault layer decided about one page write.
#[derive(Debug)]
pub(crate) enum WriteFate {
    /// Write the full payload.
    Proceed,
    /// Crash point: write only the first `keep` payload bytes (rest of the
    /// page is zeroes), then fail the operation with `Crashed`.
    Torn { keep: usize },
}

/// Per-device fault state, guarded by a mutex inside [`crate::Ssd`].
#[derive(Default)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    crashed: bool,
    /// Page writes/reads since the current plan was installed.
    writes_since_install: u64,
    reads_since_install: u64,
    counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn install(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
        self.writes_since_install = 0;
        self.reads_since_install = 0;
    }

    /// Clear the crashed flag *and* the plan, returning the device to
    /// fault-free operation (recovery entry point).
    pub(crate) fn revive(&mut self) {
        self.crashed = false;
        self.plan = None;
    }

    pub(crate) fn is_crashed(&self) -> bool {
        self.crashed
    }

    pub(crate) fn plan(&self) -> Option<FaultPlan> {
        self.plan.clone()
    }

    pub(crate) fn counters(&self) -> FaultCounters {
        self.counters
    }

    pub(crate) fn check_alive(&self) -> Result<(), DeviceError> {
        if self.crashed {
            Err(DeviceError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Account one viable page write and decide its fate.
    pub(crate) fn note_page_write(&mut self, page_size: usize) -> Result<WriteFate, DeviceError> {
        self.check_alive()?;
        self.counters.page_writes += 1;
        let Some(plan) = &self.plan else {
            return Ok(WriteFate::Proceed);
        };
        self.writes_since_install += 1;
        if plan.crash_after_writes == Some(self.writes_since_install) {
            self.crashed = true;
            self.counters.torn_writes += 1;
            self.counters.crashes += 1;
            let span = crate::checked::to_u64(page_size).max(1);
            let keep = mem_idx(mix(plan.seed ^ self.writes_since_install) % span);
            return Ok(WriteFate::Torn { keep });
        }
        Ok(WriteFate::Proceed)
    }

    /// Account one viable page read. `Ok(retries)` is the number of extra
    /// page-read service times to charge; `Err(retries)` means the fault
    /// streak outlasted the retry bound.
    pub(crate) fn note_page_read(&mut self) -> Result<u32, u32> {
        self.counters.page_reads += 1;
        let Some(plan) = &self.plan else {
            return Ok(0);
        };
        self.reads_since_install += 1;
        let Some(period) = plan.read_fault_period else {
            return Ok(0);
        };
        if period > 0 && self.reads_since_install.is_multiple_of(period) {
            self.counters.transient_read_faults += 1;
            if plan.read_fault_streak > plan.max_read_retries {
                return Err(plan.max_read_retries);
            }
            self.counters.retries_charged += u64::from(plan.read_fault_streak);
            return Ok(plan.read_fault_streak);
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_split_is_deterministic_and_in_range() {
        for n in 1..200u64 {
            let mut a = FaultState::default();
            a.install(FaultPlan::crash_after(n, 42));
            let mut b = FaultState::default();
            b.install(FaultPlan::crash_after(n, 42));
            for w in 1..=n {
                let fa = a.note_page_write(256).unwrap();
                let fb = b.note_page_write(256).unwrap();
                match (fa, fb) {
                    (WriteFate::Proceed, WriteFate::Proceed) => assert!(w < n),
                    (WriteFate::Torn { keep: ka }, WriteFate::Torn { keep: kb }) => {
                        assert_eq!(w, n);
                        assert_eq!(ka, kb, "same plan, same damage");
                        assert!(ka < 256);
                    }
                    _ => panic!("fates diverged at write {w}"),
                }
            }
            assert!(a.is_crashed());
            assert_eq!(a.note_page_write(256).unwrap_err(), DeviceError::Crashed);
        }
    }

    #[test]
    fn different_seeds_tear_differently_somewhere() {
        let keeps: Vec<usize> = (0..32u64)
            .map(|seed| {
                let mut s = FaultState::default();
                s.install(FaultPlan::crash_after(1, seed));
                match s.note_page_write(4096).unwrap() {
                    WriteFate::Torn { keep } => keep,
                    WriteFate::Proceed => panic!("expected crash"),
                }
            })
            .collect();
        assert!(keeps.windows(2).any(|w| w[0] != w[1]), "seed must matter");
    }

    #[test]
    fn read_faults_within_bound_charge_retries() {
        let mut s = FaultState::default();
        s.install(FaultPlan::default().with_read_faults(3, 2));
        assert_eq!(s.note_page_read(), Ok(0));
        assert_eq!(s.note_page_read(), Ok(0));
        assert_eq!(s.note_page_read(), Ok(2), "every 3rd read faults");
        assert_eq!(s.note_page_read(), Ok(0));
        assert_eq!(s.counters().transient_read_faults, 1);
        assert_eq!(s.counters().retries_charged, 2);
    }

    #[test]
    fn read_streak_beyond_bound_is_fatal() {
        let mut s = FaultState::default();
        s.install(FaultPlan::default().with_read_faults(1, 9).with_max_read_retries(3));
        assert_eq!(s.note_page_read(), Err(3));
    }

    #[test]
    fn revive_clears_crash_and_plan() {
        let mut s = FaultState::default();
        s.install(FaultPlan::crash_after(1, 7));
        let _ = s.note_page_write(128);
        assert!(s.is_crashed());
        s.revive();
        assert!(!s.is_crashed());
        assert!(s.plan().is_none());
        assert!(matches!(s.note_page_write(128), Ok(WriteFate::Proceed)));
    }
}

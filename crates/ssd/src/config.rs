
use crate::{DEFAULT_CHANNELS, DEFAULT_PAGE_SIZE};

/// Configuration of the simulated SSD: geometry and service-time model.
///
/// Defaults correspond to a SATA TLC drive in the class of the paper's
/// Samsung 860 EVO: ~120 µs page reads, ~240 µs page programs, 4 channels
/// (~530 MB/s read, ~270 MB/s sustained write).
/// Absolute values only scale the simulated clock; the experiments report
/// *ratios* between engines running on identical devices, so shapes are
/// insensitive to the exact figures.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Page size in bytes; minimum unit of every read and write.
    pub page_size: usize,
    /// Number of independent flash channels. Requests in one batch are
    /// striped across channels and serviced in parallel.
    pub channels: usize,
    /// Service time to read one page on one channel, nanoseconds.
    pub read_ns: u64,
    /// Service time to program (write) one page on one channel, nanoseconds.
    pub write_ns: u64,
    /// Multiplier (0 < d ≤ 1) applied to pages that continue a sequential
    /// run on the same channel: sequential access amortizes command setup
    /// and read-ahead. 1.0 disables the discount.
    pub seq_discount: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            page_size: DEFAULT_PAGE_SIZE,
            channels: DEFAULT_CHANNELS,
            read_ns: 120_000,
            write_ns: 240_000,
            seq_discount: 0.7,
        }
    }
}

impl SsdConfig {
    /// A config with `page_size` overridden (builder-style convenience).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        assert!(page_size >= 64, "page size unrealistically small");
        self.page_size = page_size;
        self
    }

    /// A config with `channels` overridden.
    pub fn with_channels(mut self, channels: usize) -> Self {
        assert!(channels >= 1);
        self.channels = channels;
        self
    }

    /// A small-page config convenient for unit tests (256-byte pages) so
    /// that page-boundary behaviour is exercised with tiny data.
    pub fn test_small() -> Self {
        SsdConfig::default().with_page_size(256)
    }

    /// Number of pages needed to hold `bytes` bytes.
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_geometry() {
        let c = SsdConfig::default();
        assert_eq!(c.page_size, 16 * 1024);
        assert_eq!(c.channels, 4);
        // SATA-class read bandwidth: page_size * channels / read_ns.
        let mbps = (c.page_size * c.channels) as f64 / (c.read_ns as f64 / 1e9) / 1e6;
        assert!((400.0..700.0).contains(&mbps), "read bandwidth {mbps} MB/s");
        assert!(c.read_ns < c.write_ns, "flash programs are slower than reads");
    }

    #[test]
    fn pages_for_rounds_up() {
        let c = SsdConfig::test_small();
        assert_eq!(c.pages_for(0), 0);
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(256), 1);
        assert_eq!(c.pages_for(257), 2);
    }

    #[test]
    #[should_panic]
    fn zero_channels_rejected() {
        let _ = SsdConfig::default().with_channels(0);
    }
}

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::Ordering;

use crate::sync::Mutex;

use crate::checked::{idx, mem_idx, page_byte_offset, to_u64};

use crate::config::SsdConfig;
use crate::cost::{batch_time_ns, PageAddr};
use crate::ftl::FtlOp;
use crate::stats::SsdStats;

/// Identifier of a file on the simulated device.
pub type FileId = u32;

/// Where page payloads live.
///
/// * `Mem` — pages are kept in heap buffers. Deterministic and fast; the
///   default for tests and benches. Accounting (the experiment currency) is
///   identical to the disk backend.
/// * `Dir` — each simulated file is an ordinary file under the given
///   directory and pages are read/written with positional I/O. Use for
///   out-of-core realism on large runs.
#[derive(Debug, Clone)]
pub enum Backend {
    Mem,
    Dir(PathBuf),
}

enum Store {
    Mem(Vec<Box<[u8]>>),
    Disk { file: fs::File, pages: u64 },
}

struct FileEntry {
    name: String,
    store: Store,
}

/// The simulated SSD: a set of named page files plus the cost model and
/// activity counters shared by every engine in the reproduction.
///
/// All operations are page-granular. Reads *copy* page payloads out so that
/// callers never hold locks while processing; the simulated service time is
/// charged at dispatch.
pub struct Ssd {
    cfg: SsdConfig,
    backend: Backend,
    stats: SsdStats,
    files: Mutex<Files>,
    /// Optional host-level write/trim trace for FTL replay (see
    /// [`crate::FtlModel`]); `None` keeps the hot path allocation-free.
    trace: Mutex<Option<Vec<FtlOp>>>,
}

#[derive(Default)]
struct Files {
    entries: Vec<Option<FileEntry>>,
    by_name: HashMap<String, FileId>,
}

impl Ssd {
    /// Create a device with the in-memory backend.
    pub fn new(cfg: SsdConfig) -> Self {
        Ssd {
            cfg,
            backend: Backend::Mem,
            stats: SsdStats::default(),
            files: Mutex::new(Files::default()),
            trace: Mutex::new(None),
        }
    }

    /// Create a device whose files live under `dir` on the host filesystem.
    pub fn new_on_disk(cfg: SsdConfig, dir: PathBuf) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Ssd {
            cfg,
            backend: Backend::Dir(dir),
            stats: SsdStats::default(),
            files: Mutex::new(Files::default()),
            trace: Mutex::new(None),
        })
    }

    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Byte offset of `page` in a backing file. A page number that
    /// overflows 64-bit byte addressing cannot name a real page, so the
    /// saturated offset makes the positional I/O below fail loudly.
    fn byte_offset(&self, page: u64) -> u64 {
        page_byte_offset(page, self.cfg.page_size).unwrap_or(u64::MAX)
    }

    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Start recording a host-level write/trim trace for FTL replay.
    /// Discards any previous trace.
    pub fn enable_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Stop recording and return the trace (empty if tracing was off).
    pub fn take_trace(&self) -> Vec<FtlOp> {
        self.trace.lock().take().unwrap_or_default()
    }

    fn trace_writes(&self, addrs: &[PageAddr]) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.extend(addrs.iter().map(|a| FtlOp::Write((a.file, a.page))));
        }
    }

    fn trace_trims(&self, file: FileId, pages: u64) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.extend((0..pages).map(|p| FtlOp::Trim((file, p))));
        }
    }

    /// Create a file, or return the existing id if the name is taken.
    pub fn open_or_create(&self, name: &str) -> FileId {
        let mut files = self.files.lock();
        if let Some(&id) = files.by_name.get(name) {
            return id;
        }
        let store = match &self.backend {
            Backend::Mem => Store::Mem(Vec::new()),
            Backend::Dir(dir) => {
                let path = dir.join(sanitize(name));
                let file = fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)
                    // mlvc-lint: allow(no-panic-in-lib) -- host filesystem failure creating the backing store; the simulator cannot continue
                    .expect("open backing file");
                Store::Disk { file, pages: 0 }
            }
        };
        let id = files.entries.len() as FileId;
        files.entries.push(Some(FileEntry {
            name: name.to_string(),
            store,
        }));
        files.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.files.lock().by_name.get(name).copied()
    }

    /// Number of pages currently in `file`.
    pub fn num_pages(&self, file: FileId) -> u64 {
        let files = self.files.lock();
        match &files.entries[idx(file)] {
            Some(e) => match &e.store {
                Store::Mem(pages) => to_u64(pages.len()),
                Store::Disk { pages, .. } => *pages,
            },
            // mlvc-lint: allow(no-panic-in-lib) -- deleted-file access is a caller bug; abort the experiment
            None => panic!("file {file} deleted"),
        }
    }

    /// Drop all pages of `file` (the file itself stays; logs are truncated
    /// at the start of each superstep after their updates are consumed).
    ///
    /// Truncation is a metadata operation (FTL trim); it is not charged.
    pub fn truncate(&self, file: FileId) {
        let dropped;
        {
            let mut files = self.files.lock();
            let entry = files.entries[idx(file)]
                .as_mut()
                // mlvc-lint: allow(no-panic-in-lib) -- truncating a deleted file is a caller bug; abort the experiment
                .expect("truncate of deleted file");
            match &mut entry.store {
                Store::Mem(pages) => {
                    dropped = to_u64(pages.len());
                    pages.clear();
                }
                Store::Disk { file, pages } => {
                    dropped = *pages;
                    // mlvc-lint: allow(no-panic-in-lib) -- host filesystem failure; the simulator cannot continue
                    file.set_len(0).expect("truncate backing file");
                    *pages = 0;
                }
            }
        }
        self.trace_trims(file, dropped);
    }

    /// Remove a file entirely. Uncharged (metadata operation).
    pub fn delete(&self, file: FileId) {
        let dropped;
        {
            let mut files = self.files.lock();
            let Some(entry) = files.entries[idx(file)].take() else {
                return;
            };
            dropped = match &entry.store {
                Store::Mem(pages) => to_u64(pages.len()),
                Store::Disk { pages, .. } => *pages,
            };
            files.by_name.remove(&entry.name);
            if let (Backend::Dir(dir), true) = (&self.backend, true) {
                let _ = fs::remove_file(dir.join(sanitize(&entry.name)));
            }
        }
        self.trace_trims(file, dropped);
    }

    /// Append one page (payload may be shorter than a page; it is
    /// zero-padded). Returns the page index. Charged as a 1-page write batch.
    pub fn append_page(&self, file: FileId, data: &[u8]) -> u64 {
        self.append_pages(file, std::slice::from_ref(&data))
    }

    /// Append several pages in one batch (e.g. multi-log eviction flushing
    /// many interval logs at once). Returns the index of the first page.
    pub fn append_pages(&self, file: FileId, pages: &[&[u8]]) -> u64 {
        let first = self.store_append(file, pages);
        let addrs: Vec<PageAddr> = (0..to_u64(pages.len()))
            .map(|i| PageAddr::new(file, first + i))
            .collect();
        self.charge_write(&addrs);
        first
    }

    /// Append pages to *multiple* files as one dispatch — the multi-log
    /// eviction path: several interval logs flush their top pages together
    /// and the writes pipeline across channels (paper §V-A3).
    pub fn append_scattered(&self, writes: &[(FileId, &[u8])]) -> Vec<u64> {
        let mut addrs = Vec::with_capacity(writes.len());
        let mut out = Vec::with_capacity(writes.len());
        for &(fid, data) in writes {
            let idx = self.store_append(fid, &[data]);
            addrs.push(PageAddr::new(fid, idx));
            out.push(idx);
        }
        self.charge_write(&addrs);
        out
    }

    /// Overwrite an existing page in place. Charged as a 1-page write.
    pub fn write_page(&self, file: FileId, page: u64, data: &[u8]) {
        assert!(data.len() <= self.cfg.page_size, "payload exceeds page");
        {
            let mut files = self.files.lock();
            let entry = files.entries[idx(file)]
                .as_mut()
                // mlvc-lint: allow(no-panic-in-lib) -- writing a deleted file is a caller bug; abort the experiment
                .expect("write to deleted file");
            match &mut entry.store {
                Store::Mem(pages) => {
                    let slot = pages
                        .get_mut(mem_idx(page))
                        // mlvc-lint: allow(no-panic-in-lib) -- out-of-bounds page is a caller bug (see #[should_panic] tests); abort
                        .unwrap_or_else(|| panic!("page {page} out of bounds"));
                    let mut buf = vec![0u8; self.cfg.page_size];
                    buf[..data.len()].copy_from_slice(data);
                    *slot = buf.into_boxed_slice();
                }
                Store::Disk { file, pages } => {
                    assert!(page < *pages, "page {page} out of bounds");
                    let mut buf = vec![0u8; self.cfg.page_size];
                    buf[..data.len()].copy_from_slice(data);
                    write_at(file, &buf, self.byte_offset(page));
                }
            }
        }
        self.charge_write(&[PageAddr::new(file, page)]);
    }

    /// Overwrite many pages (possibly across files) as one dispatch —
    /// the shard write-back path of the GraphChi baseline, where a whole
    /// shard plus its sliding windows go back to disk together.
    pub fn write_batch(&self, writes: &[(FileId, u64, &[u8])]) {
        {
            let mut files = self.files.lock();
            for &(fid, page, data) in writes {
                assert!(data.len() <= self.cfg.page_size, "payload exceeds page");
                let entry = files.entries[idx(fid)]
                    .as_mut()
                    // mlvc-lint: allow(no-panic-in-lib) -- writing a deleted file is a caller bug; abort the experiment
                    .expect("write to deleted file");
                let mut buf = vec![0u8; self.cfg.page_size];
                buf[..data.len()].copy_from_slice(data);
                match &mut entry.store {
                    Store::Mem(pages) => {
                        let slot = pages
                            .get_mut(mem_idx(page))
                            // mlvc-lint: allow(no-panic-in-lib) -- out-of-bounds page is a caller bug (see #[should_panic] tests); abort
                        .unwrap_or_else(|| panic!("page {page} out of bounds"));
                        *slot = buf.into_boxed_slice();
                    }
                    Store::Disk { file, pages } => {
                        assert!(page < *pages, "page {page} out of bounds");
                        write_at(file, &buf, self.byte_offset(page));
                    }
                }
            }
        }
        let addrs: Vec<PageAddr> = writes
            .iter()
            .map(|&(f, p, _)| PageAddr::new(f, p))
            .collect();
        self.charge_write(&addrs);
    }

    /// Read one page, declaring how many of its bytes the caller will
    /// actually use (for read-amplification accounting).
    pub fn read_page(&self, file: FileId, page: u64, useful: usize) -> Vec<u8> {
        let mut out = self.read_batch(&[(file, page, useful)]);
        // read_batch returns exactly one buffer per request.
        out.pop().unwrap_or_default()
    }

    /// Read a batch of pages dispatched together: `(file, page, useful)`.
    /// The whole batch is charged as one parallel dispatch across channels.
    pub fn read_batch(&self, reqs: &[(FileId, u64, usize)]) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut useful_total = 0u64;
        {
            let mut files = self.files.lock();
            for &(fid, page, useful) in reqs {
                assert!(
                    useful <= self.cfg.page_size,
                    "useful bytes cannot exceed the page size"
                );
                useful_total += to_u64(useful);
                let entry = files.entries[idx(fid)]
                    .as_mut()
                    // mlvc-lint: allow(no-panic-in-lib) -- reading a deleted file is a caller bug; abort the experiment
                    .expect("read from deleted file");
                let data = match &mut entry.store {
                    Store::Mem(pages) => pages
                        .get(mem_idx(page))
                        // mlvc-lint: allow(no-panic-in-lib) -- out-of-bounds page is a caller bug (see #[should_panic] tests); abort
                        .unwrap_or_else(|| panic!("page {page} out of bounds in {}", entry.name))
                        .to_vec(),
                    Store::Disk { file, pages } => {
                        assert!(page < *pages, "page {page} out of bounds in {}", entry.name);
                        let mut buf = vec![0u8; self.cfg.page_size];
                        read_at(file, &mut buf, self.byte_offset(page));
                        buf
                    }
                };
                out.push(data);
            }
        }
        let addrs: Vec<PageAddr> = reqs
            .iter()
            .map(|&(f, p, _)| PageAddr::new(f, p))
            .collect();
        self.charge_read(&addrs, useful_total);
        out
    }

    /// Retroactively declare useful bytes for data already read. Intended
    /// for log readers whose per-page payload size lives *inside* the page
    /// (a count header) and is unknown at dispatch time.
    pub fn declare_useful(&self, bytes: u64) {
        self.stats.useful_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Read every page of a file as one sequential batch (whole-log load).
    pub fn read_all(&self, file: FileId, useful_per_page: impl Fn(u64) -> usize) -> Vec<Vec<u8>> {
        let n = self.num_pages(file);
        let reqs: Vec<(FileId, u64, usize)> =
            (0..n).map(|p| (file, p, useful_per_page(p))).collect();
        self.read_batch(&reqs)
    }

    fn store_append(&self, file: FileId, pages: &[&[u8]]) -> u64 {
        let mut files = self.files.lock();
        let entry = files.entries[idx(file)]
            .as_mut()
            // mlvc-lint: allow(no-panic-in-lib) -- appending to a deleted file is a caller bug; abort the experiment
            .expect("append to deleted file");
        match &mut entry.store {
            Store::Mem(existing) => {
                let first = to_u64(existing.len());
                for data in pages {
                    assert!(data.len() <= self.cfg.page_size, "payload exceeds page");
                    let mut buf = vec![0u8; self.cfg.page_size];
                    buf[..data.len()].copy_from_slice(data);
                    existing.push(buf.into_boxed_slice());
                }
                first
            }
            Store::Disk { file, pages: n } => {
                let first = *n;
                for data in pages {
                    assert!(data.len() <= self.cfg.page_size, "payload exceeds page");
                    let mut buf = vec![0u8; self.cfg.page_size];
                    buf[..data.len()].copy_from_slice(data);
                    write_at(file, &buf, self.byte_offset(*n));
                    *n += 1;
                }
                first
            }
        }
    }

    fn charge_read(&self, addrs: &[PageAddr], useful: u64) {
        if addrs.is_empty() {
            return;
        }
        let t = batch_time_ns(&self.cfg, addrs, self.cfg.read_ns);
        let s = &self.stats;
        s.pages_read.fetch_add(to_u64(addrs.len()), Ordering::Relaxed);
        s.bytes_read
            .fetch_add(to_u64(addrs.len()) * to_u64(self.cfg.page_size), Ordering::Relaxed);
        s.useful_bytes_read.fetch_add(useful, Ordering::Relaxed);
        s.read_time_ns.fetch_add(t, Ordering::Relaxed);
        s.read_batches.fetch_add(1, Ordering::Relaxed);
    }

    fn charge_write(&self, addrs: &[PageAddr]) {
        if addrs.is_empty() {
            return;
        }
        self.trace_writes(addrs);
        let t = batch_time_ns(&self.cfg, addrs, self.cfg.write_ns);
        let s = &self.stats;
        s.pages_written.fetch_add(to_u64(addrs.len()), Ordering::Relaxed);
        s.bytes_written
            .fetch_add(to_u64(addrs.len()) * to_u64(self.cfg.page_size), Ordering::Relaxed);
        s.write_time_ns.fetch_add(t, Ordering::Relaxed);
        s.write_batches.fetch_add(1, Ordering::Relaxed);
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
        .collect()
}

#[cfg(unix)]
fn read_at(file: &fs::File, buf: &mut [u8], offset: u64) {
    use std::os::unix::fs::FileExt;
    // mlvc-lint: allow(no-panic-in-lib) -- host positional-I/O failure; the simulator cannot continue
    file.read_exact_at(buf, offset).expect("read_at");
}

#[cfg(unix)]
fn write_at(file: &fs::File, buf: &[u8], offset: u64) {
    use std::os::unix::fs::FileExt;
    // mlvc-lint: allow(no-panic-in-lib) -- host positional-I/O failure; the simulator cannot continue
    file.write_all_at(buf, offset).expect("write_at");
}

#[cfg(not(unix))]
fn read_at(_file: &fs::File, _buf: &mut [u8], _offset: u64) {
    unimplemented!("disk backend requires unix positional I/O");
}

#[cfg(not(unix))]
fn write_at(_file: &fs::File, _buf: &[u8], _offset: u64) {
    unimplemented!("disk backend requires unix positional I/O");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Ssd {
        Ssd::new(SsdConfig::test_small())
    }

    #[test]
    fn roundtrip_single_page() {
        let ssd = dev();
        let f = ssd.open_or_create("a");
        let idx = ssd.append_page(f, b"hello");
        assert_eq!(idx, 0);
        let page = ssd.read_page(f, 0, 5);
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "zero padded");
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let ssd = dev();
        let a = ssd.open_or_create("x");
        let b = ssd.open_or_create("x");
        assert_eq!(a, b);
        assert_ne!(a, ssd.open_or_create("y"));
    }

    #[test]
    fn append_grows_and_truncate_clears() {
        let ssd = dev();
        let f = ssd.open_or_create("log");
        for i in 0..5u8 {
            ssd.append_page(f, &[i; 16]);
        }
        assert_eq!(ssd.num_pages(f), 5);
        let p3 = ssd.read_page(f, 3, 16);
        assert_eq!(&p3[..16], &[3u8; 16]);
        ssd.truncate(f);
        assert_eq!(ssd.num_pages(f), 0);
    }

    #[test]
    fn write_page_overwrites_in_place() {
        let ssd = dev();
        let f = ssd.open_or_create("v");
        ssd.append_page(f, b"old");
        ssd.write_page(f, 0, b"new!");
        assert_eq!(&ssd.read_page(f, 0, 4)[..4], b"new!");
    }

    #[test]
    fn stats_account_pages_and_useful_bytes() {
        let ssd = dev();
        let f = ssd.open_or_create("s");
        ssd.append_page(f, &[1; 100]);
        ssd.append_page(f, &[2; 100]);
        let before = ssd.stats().snapshot();
        assert_eq!(before.pages_written, 2);
        ssd.read_batch(&[(f, 0, 10), (f, 1, 20)]);
        let after = ssd.stats().snapshot().since(&before);
        assert_eq!(after.pages_read, 2);
        assert_eq!(after.useful_bytes_read, 30);
        assert_eq!(after.bytes_read, 2 * 256);
        assert!(after.read_amplification().unwrap() > 1.0);
        assert_eq!(after.read_batches, 1);
    }

    #[test]
    fn batched_read_is_cheaper_than_serial_reads() {
        let cfg = SsdConfig::test_small();
        let ssd1 = Ssd::new(cfg.clone());
        let f1 = ssd1.open_or_create("a");
        for _ in 0..16 {
            ssd1.append_page(f1, &[0; 8]);
        }
        ssd1.stats().reset();
        ssd1.read_batch(&(0..16).map(|p| (f1, p, 8)).collect::<Vec<_>>());
        let batched = ssd1.stats().snapshot().read_time_ns;

        let ssd2 = Ssd::new(cfg);
        let f2 = ssd2.open_or_create("a");
        for _ in 0..16 {
            ssd2.append_page(f2, &[0; 8]);
        }
        ssd2.stats().reset();
        for p in 0..16 {
            ssd2.read_page(f2, p, 8);
        }
        let serial = ssd2.stats().snapshot().read_time_ns;
        assert!(
            batched < serial,
            "channel-parallel batch ({batched}) must beat serial ({serial})"
        );
    }

    #[test]
    fn scattered_append_hits_multiple_files() {
        let ssd = dev();
        let a = ssd.open_or_create("a");
        let b = ssd.open_or_create("b");
        let pa = [7u8; 4];
        let pb = [9u8; 4];
        let idx = ssd.append_scattered(&[(a, &pa), (b, &pb), (a, &pa)]);
        assert_eq!(idx, vec![0, 0, 1]);
        assert_eq!(ssd.num_pages(a), 2);
        assert_eq!(ssd.num_pages(b), 1);
        assert_eq!(ssd.stats().snapshot().write_batches, 1);
    }

    #[test]
    fn delete_frees_name() {
        let ssd = dev();
        let f = ssd.open_or_create("tmp");
        ssd.delete(f);
        assert!(ssd.lookup("tmp").is_none());
        let g = ssd.open_or_create("tmp");
        assert_ne!(f, g);
    }

    #[test]
    fn disk_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlvc-ssd-test-{}", std::process::id()));
        let ssd = Ssd::new_on_disk(SsdConfig::test_small(), dir.clone()).unwrap();
        let f = ssd.open_or_create("durable");
        ssd.append_page(f, b"on real disk");
        ssd.append_page(f, b"second page");
        let p = ssd.read_page(f, 1, 11);
        assert_eq!(&p[..11], b"second page");
        ssd.write_page(f, 0, b"rewritten");
        assert_eq!(&ssd.read_page(f, 0, 9)[..9], b"rewritten");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic]
    fn oversized_payload_panics() {
        let ssd = dev();
        let f = ssd.open_or_create("big");
        ssd.append_page(f, &vec![0u8; 257]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let ssd = dev();
        let f = ssd.open_or_create("a");
        ssd.read_page(f, 0, 0);
    }
}

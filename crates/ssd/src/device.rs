use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::cache::{PageCache, TenantId};
use crate::checked::{idx, mem_idx, page_byte_offset, to_u32, to_u64};

use crate::config::SsdConfig;
use crate::cost::{batch_time_ns, PageAddr};
use crate::fault::{DeviceError, FaultCounters, FaultPlan, FaultState, WriteFate};
use crate::ftl::{FtlConfig, FtlModel, FtlOp, FtlStats};
use crate::stats::SsdStats;

/// Identifier of a file on the simulated device.
pub type FileId = u32;

/// Where page payloads live.
///
/// * `Mem` — pages are kept in heap buffers. Deterministic and fast; the
///   default for tests and benches. Accounting (the experiment currency) is
///   identical to the disk backend.
/// * `Dir` — each simulated file is an ordinary file under the given
///   directory and pages are read/written with positional I/O. Use for
///   out-of-core realism on large runs.
#[derive(Debug, Clone)]
pub enum Backend {
    Mem,
    Dir(PathBuf),
}

enum Store {
    Mem(Vec<Box<[u8]>>),
    Disk { file: fs::File, pages: u64 },
}

struct FileEntry {
    name: String,
    store: Store,
}

/// The simulated SSD: a set of named page files plus the cost model and
/// activity counters shared by every engine in the reproduction.
///
/// All operations are page-granular. Reads *copy* page payloads out so that
/// callers never hold locks while processing; the simulated service time is
/// charged at dispatch.
///
/// Every operation is fallible: besides genuine caller bugs (deleted files,
/// out-of-bounds pages, oversized payloads) the device can be armed with a
/// deterministic [`FaultPlan`] that tears a page mid-write and crashes the
/// device, or injects transient read faults — the substrate the
/// `mlvc-recover` crash-point sweep drives.
///
/// An `Ssd` value is a *view* over shared device internals. The value
/// returned by the constructors is the base view; [`Ssd::tenant_view`]
/// derives additional views that share the media, namespace, trace/FTL
/// models and the attached [`PageCache`], but carry their own activity
/// counters (also charged to the base, so daemon-wide totals stay exact)
/// and their own fault state — a crash injected into one tenant's view
/// must not take down its neighbours.
pub struct Ssd {
    shared: Arc<Shared>,
    /// This view's activity counters.
    stats: Arc<SsdStats>,
    /// The base view's counters, double-charged from tenant views so the
    /// device-wide totals remain the sum over tenants; `None` on the base.
    base_stats: Option<Arc<SsdStats>>,
    /// Per-view fault state: plans installed on a tenant view crash only
    /// that tenant.
    fault: Mutex<FaultState>,
    /// Per-view append-retention arming (DESIGN.md §18): while armed, the
    /// first `remaining` bytes appended to the listed files through this
    /// view are write-allocated into the attached cache's pinned tier.
    retention: Mutex<Option<AppendRetention>>,
    /// Cache-accounting identity of this view (base = 0).
    tenant: TenantId,
}

/// State of [`Ssd::arm_append_retention`]: which files retain their
/// appends and how much pinned-tier budget is left, charged one whole
/// page per retained append (the pinned copy is zero-padded to a page).
struct AppendRetention {
    files: std::collections::HashSet<FileId>,
    remaining: u64,
}

/// Device internals common to every view.
struct Shared {
    cfg: SsdConfig,
    backend: Backend,
    files: Mutex<Files>,
    /// Optional host-level write/trim trace for FTL replay (see
    /// [`crate::FtlModel`]); `None` keeps the hot path allocation-free.
    trace: Mutex<Option<Vec<FtlOp>>>,
    /// Optional *live* FTL model fed by every page write and trim as it
    /// happens (the observability layer's flash write-amplification
    /// source); `None` keeps the hot path to one lock + branch per batch.
    ftl: Mutex<Option<FtlModel>>,
    /// Optional shared page cache in front of the read path (the serving
    /// daemon attaches one; `None` keeps single-run behaviour unchanged).
    cache: Mutex<Option<Arc<PageCache>>>,
    /// Shadow cell auditing the attach/consume protocol of the live FTL:
    /// [`Ssd::enable_ftl`] must be ordered before every write that feeds
    /// the model and every [`Ssd::ftl_stats`] read (DESIGN.md §14).
    ftl_audit: mlvc_par::Tracked<()>,
}

#[derive(Default)]
struct Files {
    entries: Vec<Option<FileEntry>>,
    by_name: HashMap<String, FileId>,
}

/// Outcome of a store-level append: how many pages actually reached the
/// media before the batch (possibly) failed.
struct Placed {
    first: u64,
    written: u64,
    err: Option<DeviceError>,
}

fn io_err(op: &str, e: &io::Error) -> DeviceError {
    DeviceError::Io(format!("{op}: {e}"))
}

impl Ssd {
    fn from_shared(shared: Shared) -> Self {
        Ssd {
            shared: Arc::new(shared),
            stats: Arc::new(SsdStats::default()),
            base_stats: None,
            fault: Mutex::new(FaultState::default()),
            retention: Mutex::new(None),
            tenant: 0,
        }
    }

    /// Create a device with the in-memory backend.
    pub fn new(cfg: SsdConfig) -> Self {
        Ssd::from_shared(Shared {
            cfg,
            backend: Backend::Mem,
            files: Mutex::new(Files::default()),
            trace: Mutex::new(None),
            ftl: Mutex::new(None),
            cache: Mutex::new(None),
            ftl_audit: mlvc_par::Tracked::new("Ssd::ftl attach", ()),
        })
    }

    /// Create a device whose files live under `dir` on the host filesystem.
    pub fn new_on_disk(cfg: SsdConfig, dir: PathBuf) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Ssd::from_shared(Shared {
            cfg,
            backend: Backend::Dir(dir),
            files: Mutex::new(Files::default()),
            trace: Mutex::new(None),
            ftl: Mutex::new(None),
            cache: Mutex::new(None),
            ftl_audit: mlvc_par::Tracked::new("Ssd::ftl attach", ()),
        }))
    }

    /// Derive a tenant view: same media, namespace, FTL/trace models and
    /// cache, but fresh activity counters (double-charged to the root
    /// view) and independent fault state. `tenant` attributes this view's
    /// cache traffic in [`PageCache`] accounting.
    pub fn tenant_view(&self, tenant: TenantId) -> Ssd {
        let root = self.base_stats.clone().unwrap_or_else(|| Arc::clone(&self.stats));
        Ssd {
            shared: Arc::clone(&self.shared),
            stats: Arc::new(SsdStats::default()),
            base_stats: Some(root),
            fault: Mutex::new(FaultState::default()),
            retention: Mutex::new(None),
            tenant,
        }
    }

    /// Put a shared page cache in front of the read path of this device
    /// and every view of it.
    pub fn attach_cache(&self, cache: Arc<PageCache>) {
        *self.shared.cache.lock() = Some(cache);
    }

    /// The attached page cache, if any.
    pub fn cache(&self) -> Option<Arc<PageCache>> {
        self.shared.cache.lock().clone()
    }

    /// This view's tenant id (0 on the base view).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    pub fn config(&self) -> &SsdConfig {
        &self.shared.cfg
    }

    pub fn page_size(&self) -> usize {
        self.shared.cfg.page_size
    }

    /// Byte offset of `page` in a backing file. A page number that
    /// overflows 64-bit byte addressing cannot name a real page, so the
    /// saturated offset makes the positional I/O below fail loudly.
    fn byte_offset(&self, page: u64) -> u64 {
        page_byte_offset(page, self.shared.cfg.page_size).unwrap_or(u64::MAX)
    }

    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Counter sinks for this view: its own stats plus (on tenant views)
    /// the root's, so device-wide totals equal the sum over tenants.
    fn charge_sinks(&self) -> impl Iterator<Item = &SsdStats> {
        std::iter::once(&*self.stats).chain(self.base_stats.as_deref())
    }

    // ---- fault injection -------------------------------------------------

    /// Arm a deterministic fault schedule. Fault counters restart from the
    /// moment of installation, so a plan's crash/read-fault points are
    /// relative to the workload that follows.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.fault.lock().install(plan);
    }

    /// The currently armed plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.lock().plan()
    }

    /// Whether the device is in the crashed state (every operation fails
    /// with [`DeviceError::Crashed`]).
    pub fn is_crashed(&self) -> bool {
        self.fault.lock().is_crashed()
    }

    /// Clear the crashed state *and* the armed plan, returning the device
    /// to fault-free operation. Durable contents — including the torn page
    /// written at the crash point — are left exactly as the crash left
    /// them; this is the recovery entry point.
    pub fn revive(&self) {
        self.fault.lock().revive();
    }

    /// Cumulative fault-activity counters (survive install/revive).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault.lock().counters()
    }

    // ---- tracing ---------------------------------------------------------

    /// Start recording a host-level write/trim trace for FTL replay.
    /// Discards any previous trace.
    pub fn enable_trace(&self) {
        *self.shared.trace.lock() = Some(Vec::new());
    }

    /// Stop recording and return the trace (empty if tracing was off).
    pub fn take_trace(&self) -> Vec<FtlOp> {
        self.shared.trace.lock().take().unwrap_or_default()
    }

    fn trace_writes(&self, addrs: &[PageAddr]) {
        if let Some(t) = self.shared.trace.lock().as_mut() {
            t.extend(addrs.iter().map(|a| FtlOp::Write((a.file, a.page))));
        }
    }

    fn trace_trims(&self, file: FileId, pages: u64) {
        if let Some(t) = self.shared.trace.lock().as_mut() {
            t.extend((0..pages).map(|p| FtlOp::Trim((file, p))));
        }
    }

    // ---- live FTL --------------------------------------------------------

    /// Attach a live [`FtlModel`] fed by every subsequent page write and
    /// trim (the observability layer's write-amplification source, as
    /// opposed to the record-then-[`FtlModel::replay`] flow of
    /// `enable_trace`). Idempotent: a model that is already attached keeps
    /// its state so re-enabling cannot reset amplification counters.
    pub fn enable_ftl(&self, cfg: FtlConfig) {
        let mut g = self.shared.ftl.lock();
        if g.is_none() {
            // Only the installing call is the protocol's "attach" write;
            // an idempotent re-attach merely observes that the model is
            // already there. Concurrent tenants re-attaching (the serving
            // daemon attaches once at construction, then every job calls
            // this) are ordered readers, not racing writers.
            self.shared.ftl_audit.audit_write();
            *g = Some(FtlModel::new(cfg));
        } else {
            self.shared.ftl_audit.audit_read();
        }
    }

    /// Whether a live FTL model is attached.
    pub fn ftl_enabled(&self) -> bool {
        self.shared.ftl.lock().is_some()
    }

    /// Snapshot of the live FTL's counters (`None` when not enabled).
    pub fn ftl_stats(&self) -> Option<FtlStats> {
        self.shared.ftl_audit.audit_read();
        self.shared.ftl.lock().as_ref().map(FtlModel::stats)
    }

    fn ftl_writes(&self, addrs: &[PageAddr]) {
        self.shared.ftl_audit.audit_read();
        if let Some(f) = self.shared.ftl.lock().as_mut() {
            for a in addrs {
                f.write((a.file, a.page));
            }
        }
    }

    fn ftl_trims(&self, file: FileId, pages: u64) {
        if let Some(f) = self.shared.ftl.lock().as_mut() {
            for p in 0..pages {
                f.trim((file, p));
            }
        }
    }

    // ---- namespace -------------------------------------------------------

    /// Create a file, or return the existing id if the name is taken.
    ///
    /// On the `Dir` backend an existing backing file's contents are
    /// **preserved** (its page count is recomputed from its length) so that
    /// a restarted process can find the previous run's checkpoints;
    /// construction sites that need a fresh file truncate explicitly.
    pub fn open_or_create(&self, name: &str) -> Result<FileId, DeviceError> {
        self.fault.lock().check_alive()?;
        let mut files = self.shared.files.lock();
        if let Some(&id) = files.by_name.get(name) {
            return Ok(id);
        }
        let store = match &self.shared.backend {
            Backend::Mem => Store::Mem(Vec::new()),
            Backend::Dir(dir) => {
                let path = dir.join(sanitize(name));
                let file = fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(path)
                    .map_err(|e| io_err("open backing file", &e))?;
                let len = file
                    .metadata()
                    .map_err(|e| io_err("stat backing file", &e))?
                    .len();
                let pages = len / to_u64(self.shared.cfg.page_size).max(1);
                Store::Disk { file, pages }
            }
        };
        let id = to_u32("file id", files.entries.len())
            .map_err(|e| DeviceError::Io(e.to_string()))?;
        files.entries.push(Some(FileEntry {
            name: name.to_string(),
            store,
        }));
        files.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.shared.files.lock().by_name.get(name).copied()
    }

    /// Number of pages currently in `file`.
    pub fn num_pages(&self, file: FileId) -> Result<u64, DeviceError> {
        let files = self.shared.files.lock();
        match files.entries.get(idx(file)).and_then(Option::as_ref) {
            Some(e) => Ok(match &e.store {
                Store::Mem(pages) => to_u64(pages.len()),
                Store::Disk { pages, .. } => *pages,
            }),
            None => Err(DeviceError::Deleted { file }),
        }
    }

    /// Drop all pages of `file` (the file itself stays; logs are truncated
    /// at the start of each superstep after their updates are consumed).
    ///
    /// Truncation is a metadata operation (FTL trim); it is not charged.
    pub fn truncate(&self, file: FileId) -> Result<(), DeviceError> {
        self.fault.lock().check_alive()?;
        let dropped;
        {
            let mut files = self.shared.files.lock();
            let entry = files
                .entries
                .get_mut(idx(file))
                .and_then(Option::as_mut)
                .ok_or(DeviceError::Deleted { file })?;
            match &mut entry.store {
                Store::Mem(pages) => {
                    dropped = to_u64(pages.len());
                    pages.clear();
                }
                Store::Disk { file, pages } => {
                    dropped = *pages;
                    file.set_len(0).map_err(|e| io_err("truncate backing file", &e))?;
                    *pages = 0;
                }
            }
        }
        self.trace_trims(file, dropped);
        self.ftl_trims(file, dropped);
        // Dropped pages must not be served from the shared cache.
        let cache = self.shared.cache.lock().clone();
        if let Some(c) = cache {
            c.invalidate_file(file);
        }
        Ok(())
    }

    /// Remove a file entirely. Uncharged (metadata operation). Deleting an
    /// already-deleted file is a no-op.
    pub fn delete(&self, file: FileId) -> Result<(), DeviceError> {
        self.fault.lock().check_alive()?;
        let dropped;
        {
            let mut files = self.shared.files.lock();
            let Some(slot) = files.entries.get_mut(idx(file)) else {
                return Ok(());
            };
            let Some(entry) = slot.take() else {
                return Ok(());
            };
            dropped = match &entry.store {
                Store::Mem(pages) => to_u64(pages.len()),
                Store::Disk { pages, .. } => *pages,
            };
            files.by_name.remove(&entry.name);
            if let Backend::Dir(dir) = &self.shared.backend {
                let _ = fs::remove_file(dir.join(sanitize(&entry.name)));
            }
        }
        self.trace_trims(file, dropped);
        self.ftl_trims(file, dropped);
        // Dropped pages must not be served from the shared cache.
        let cache = self.shared.cache.lock().clone();
        if let Some(c) = cache {
            c.invalidate_file(file);
        }
        Ok(())
    }

    // ---- writes ----------------------------------------------------------

    /// Arm append retention on this view (DESIGN.md §18): until re-armed
    /// or disarmed, the first `budget_bytes` worth of pages appended to
    /// `files` are write-allocated into the attached cache's pinned tier —
    /// the bytes are in host memory at append time, so the copy costs no
    /// device read, and a consumer re-reading the tail next superstep hits
    /// DRAM instead of flash. Each retained page charges one whole page of
    /// budget. Truncating or deleting a file drops its retained copies
    /// like any other pinned page (the budget is not re-credited; arming
    /// is per-superstep). A no-op while no cache is attached.
    pub fn arm_append_retention(&self, files: &[FileId], budget_bytes: u64) {
        *self.retention.lock() = Some(AppendRetention {
            files: files.iter().copied().collect(),
            remaining: budget_bytes,
        });
    }

    /// Disarm append retention on this view. Already-retained pages stay
    /// pinned until their file is truncated, deleted or overwritten.
    pub fn disarm_append_retention(&self) {
        *self.retention.lock() = None;
    }

    /// Unspent budget of the current arming (`None` while disarmed). The
    /// engine's retier subtracts `armed - unspent` — the bytes a still-
    /// draining retained tail holds — from the topology pin budget, so
    /// total pinned bytes never exceed the configured budget.
    pub fn append_retention_unspent(&self) -> Option<u64> {
        self.retention.lock().as_ref().map(|r| r.remaining)
    }

    /// The append-retention hook: write-allocate freshly appended pages
    /// into the pinned tier while the armed budget lasts. Runs after
    /// `charge_write`, whose invalidation already dropped any stale copy
    /// of these page slots.
    fn retain_appends(&self, writes: &[(FileId, u64, &[u8])]) {
        let mut guard = self.retention.lock();
        let Some(r) = guard.as_mut() else {
            return;
        };
        let page_bytes = to_u64(self.shared.cfg.page_size);
        if r.remaining < page_bytes {
            return;
        }
        let cache = self.shared.cache.lock().clone();
        let Some(c) = cache else {
            return;
        };
        for &(file, page, data) in writes {
            if r.remaining < page_bytes {
                break;
            }
            if !r.files.contains(&file) {
                continue;
            }
            if c.pin_written(file, page, data, self.shared.cfg.page_size, self.tenant) {
                r.remaining -= page_bytes;
            }
        }
    }

    /// Append one page (payload may be shorter than a page; it is
    /// zero-padded). Returns the page index. Charged as a 1-page write batch.
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<u64, DeviceError> {
        self.append_pages(file, std::slice::from_ref(&data))
    }

    /// Append several pages in one batch (e.g. multi-log eviction flushing
    /// many interval logs at once). Returns the index of the first page.
    ///
    /// A crash point inside the batch leaves the pages before it durable
    /// and the crash page torn; the operation then fails with `Crashed`.
    pub fn append_pages(&self, file: FileId, pages: &[&[u8]]) -> Result<u64, DeviceError> {
        let placed = self.store_append(file, pages);
        let addrs: Vec<PageAddr> = (0..placed.written)
            .map(|i| PageAddr::new(file, placed.first + i))
            .collect();
        self.charge_write(&addrs);
        match placed.err {
            Some(e) => Err(e),
            None => {
                let writes: Vec<(FileId, u64, &[u8])> = pages
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| (file, placed.first + to_u64(i), d))
                    .collect();
                self.retain_appends(&writes);
                Ok(placed.first)
            }
        }
    }

    /// Append pages to *multiple* files as one dispatch — the multi-log
    /// eviction path: several interval logs flush their top pages together
    /// and the writes pipeline across channels (paper §V-A3).
    pub fn append_scattered(&self, writes: &[(FileId, &[u8])]) -> Result<Vec<u64>, DeviceError> {
        let mut addrs = Vec::with_capacity(writes.len());
        let mut out = Vec::with_capacity(writes.len());
        let mut failed = None;
        for &(fid, data) in writes {
            let placed = self.store_append(fid, &[data]);
            if placed.written == 1 {
                addrs.push(PageAddr::new(fid, placed.first));
                out.push(placed.first);
            }
            if let Some(e) = placed.err {
                failed = Some(e);
                break;
            }
        }
        self.charge_write(&addrs);
        match failed {
            Some(e) => Err(e),
            None => {
                let placed: Vec<(FileId, u64, &[u8])> = writes
                    .iter()
                    .zip(&out)
                    .map(|(&(fid, data), &page)| (fid, page, data))
                    .collect();
                self.retain_appends(&placed);
                Ok(out)
            }
        }
    }

    /// Overwrite an existing page in place. Charged as a 1-page write.
    pub fn write_page(&self, file: FileId, page: u64, data: &[u8]) -> Result<(), DeviceError> {
        self.write_batch(&[(file, page, data)])
    }

    /// Overwrite many pages (possibly across files) as one dispatch —
    /// the shard write-back path of the GraphChi baseline, where a whole
    /// shard plus its sliding windows go back to disk together.
    pub fn write_batch(&self, writes: &[(FileId, u64, &[u8])]) -> Result<(), DeviceError> {
        let mut done: Vec<PageAddr> = Vec::with_capacity(writes.len());
        let mut failed: Option<DeviceError> = None;
        {
            let mut files = self.shared.files.lock();
            for &(fid, page, data) in writes {
                if data.len() > self.shared.cfg.page_size {
                    failed = Some(DeviceError::PayloadTooLarge {
                        len: data.len(),
                        page_size: self.shared.cfg.page_size,
                    });
                    break;
                }
                let Some(entry) = files.entries.get_mut(idx(fid)).and_then(Option::as_mut)
                else {
                    failed = Some(DeviceError::Deleted { file: fid });
                    break;
                };
                let n = match &entry.store {
                    Store::Mem(pages) => to_u64(pages.len()),
                    Store::Disk { pages, .. } => *pages,
                };
                if page >= n {
                    failed = Some(DeviceError::OutOfBounds { file: fid, page });
                    break;
                }
                let fate = match self.fault.lock().note_page_write(self.shared.cfg.page_size) {
                    Ok(f) => f,
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                };
                let keep = match &fate {
                    WriteFate::Proceed => data.len(),
                    WriteFate::Torn { keep } => (*keep).min(data.len()),
                };
                let mut buf = vec![0u8; self.shared.cfg.page_size];
                buf[..keep].copy_from_slice(&data[..keep]);
                match &mut entry.store {
                    Store::Mem(pages) => pages[mem_idx(page)] = buf.into_boxed_slice(),
                    Store::Disk { file, .. } => {
                        if let Err(e) = write_at(file, &buf, self.byte_offset(page)) {
                            failed = Some(io_err("write_at", &e));
                            break;
                        }
                    }
                }
                done.push(PageAddr::new(fid, page));
                if matches!(fate, WriteFate::Torn { .. }) {
                    failed = Some(DeviceError::Crashed);
                    break;
                }
            }
        }
        self.charge_write(&done);
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ---- reads -----------------------------------------------------------

    /// Read one page, declaring how many of its bytes the caller will
    /// actually use (for read-amplification accounting).
    pub fn read_page(&self, file: FileId, page: u64, useful: usize) -> Result<Vec<u8>, DeviceError> {
        let mut out = self.read_batch(&[(file, page, useful)])?;
        // read_batch returns exactly one buffer per request.
        Ok(out.pop().unwrap_or_default())
    }

    /// Read a batch of pages dispatched together: `(file, page, useful)`.
    /// The whole batch is charged as one parallel dispatch across channels.
    ///
    /// When a [`PageCache`] is attached the batch is served through it:
    /// resident pages are hits (charged nothing), concurrent fetches of the
    /// same page are merged, and only genuine misses reach the device.
    ///
    /// Transient read faults within the device's retry bound are absorbed
    /// here, charging one extra page-read service time per retry on the
    /// virtual clock; a fault streak beyond the bound fails the batch with
    /// [`DeviceError::ReadUnavailable`].
    pub fn read_batch(&self, reqs: &[(FileId, u64, usize)]) -> Result<Vec<Vec<u8>>, DeviceError> {
        let cache = self.shared.cache.lock().clone();
        match cache {
            Some(c) => {
                // A crashed view must not be served from the cache either.
                self.fault.lock().check_alive()?;
                c.read_through(self, reqs, self.tenant, true)
            }
            None => self.read_batch_uncached(reqs),
        }
    }

    /// Read a batch whose simulated service time has already been accounted
    /// for elsewhere — the data path of [`crate::IoQueue`], whose virtual
    /// clocks charge queueing/service time at submit and completion. Pages,
    /// bytes and exactly one `read_batches` are charged here (once per
    /// ticket, regardless of how many channels or cache passes serve it);
    /// `read_time_ns` is not. Fault-retry penalties are real extra service
    /// time and are still charged at fetch.
    pub fn read_batch_deferred(
        &self,
        reqs: &[(FileId, u64, usize)],
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        let cache = self.shared.cache.lock().clone();
        match cache {
            Some(c) => {
                self.fault.lock().check_alive()?;
                c.read_through(self, reqs, self.tenant, false)
            }
            None => self.read_batch_uncached_inner(reqs, false),
        }
    }

    /// Add already-computed read wait/service time to this view's clock —
    /// the [`crate::IoQueue`] charges submission stalls and completion waits
    /// through this, keeping `read_time_ns` the single total the
    /// observability layer mirrors.
    pub fn charge_read_wait(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        for s in self.charge_sinks() {
            s.read_time_ns.add(ns);
        }
    }

    /// The raw device read path, bypassing any attached cache — the cache's
    /// own fill path, and the whole story when no cache is attached.
    pub(crate) fn read_batch_uncached(
        &self,
        reqs: &[(FileId, u64, usize)],
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        self.read_batch_uncached_inner(reqs, true)
    }

    /// `read_batch_uncached` with the service-time charge made optional:
    /// `charge_time: false` is the deferred path, where the queue's virtual
    /// clocks own the time accounting but counts must still be exact.
    pub(crate) fn read_batch_uncached_inner(
        &self,
        reqs: &[(FileId, u64, usize)],
        charge_time: bool,
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        self.fault.lock().check_alive()?;
        let mut out = Vec::with_capacity(reqs.len());
        let mut addrs = Vec::with_capacity(reqs.len());
        let mut useful_total = 0u64;
        let mut extra_retries = 0u64;
        let mut failed: Option<DeviceError> = None;
        {
            let mut files = self.shared.files.lock();
            for &(fid, page, useful) in reqs {
                assert!(
                    useful <= self.shared.cfg.page_size,
                    "useful bytes cannot exceed the page size"
                );
                let Some(entry) = files.entries.get_mut(idx(fid)).and_then(Option::as_mut)
                else {
                    failed = Some(DeviceError::Deleted { file: fid });
                    break;
                };
                let n = match &entry.store {
                    Store::Mem(pages) => to_u64(pages.len()),
                    Store::Disk { pages, .. } => *pages,
                };
                if page >= n {
                    failed = Some(DeviceError::OutOfBounds { file: fid, page });
                    break;
                }
                match self.fault.lock().note_page_read() {
                    Ok(r) => extra_retries += u64::from(r),
                    Err(retries) => {
                        failed = Some(DeviceError::ReadUnavailable { file: fid, page, retries });
                        break;
                    }
                }
                let data = match &mut entry.store {
                    Store::Mem(pages) => pages
                        .get(mem_idx(page))
                        .map(|p| p.to_vec())
                        .unwrap_or_default(),
                    Store::Disk { file, .. } => {
                        let mut buf = vec![0u8; self.shared.cfg.page_size];
                        if let Err(e) = read_at(file, &mut buf, self.byte_offset(page)) {
                            failed = Some(io_err("read_at", &e));
                            break;
                        }
                        buf
                    }
                };
                useful_total += to_u64(useful);
                addrs.push(PageAddr::new(fid, page));
                out.push(data);
            }
        }
        self.charge_read(&addrs, useful_total, charge_time);
        if extra_retries > 0 {
            let t = extra_retries.saturating_mul(self.shared.cfg.read_ns);
            for s in self.charge_sinks() {
                s.read_time_ns.add(t);
            }
        }
        match failed {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Retroactively declare useful bytes for data already read. Intended
    /// for log readers whose per-page payload size lives *inside* the page
    /// (a count header) and is unknown at dispatch time.
    pub fn declare_useful(&self, bytes: u64) {
        for s in self.charge_sinks() {
            s.useful_bytes_read.add(bytes);
        }
    }

    /// Read every page of a file as one sequential batch (whole-log load).
    pub fn read_all(
        &self,
        file: FileId,
        useful_per_page: impl Fn(u64) -> usize,
    ) -> Result<Vec<Vec<u8>>, DeviceError> {
        let n = self.num_pages(file)?;
        let reqs: Vec<(FileId, u64, usize)> =
            (0..n).map(|p| (file, p, useful_per_page(p))).collect();
        self.read_batch(&reqs)
    }

    fn store_append(&self, file: FileId, pages: &[&[u8]]) -> Placed {
        let mut files = self.shared.files.lock();
        let Some(entry) = files.entries.get_mut(idx(file)).and_then(Option::as_mut) else {
            return Placed { first: 0, written: 0, err: Some(DeviceError::Deleted { file }) };
        };
        let first = match &entry.store {
            Store::Mem(existing) => to_u64(existing.len()),
            Store::Disk { pages: n, .. } => *n,
        };
        let mut written = 0u64;
        let mut err = None;
        for data in pages {
            if data.len() > self.shared.cfg.page_size {
                err = Some(DeviceError::PayloadTooLarge {
                    len: data.len(),
                    page_size: self.shared.cfg.page_size,
                });
                break;
            }
            let fate = match self.fault.lock().note_page_write(self.shared.cfg.page_size) {
                Ok(f) => f,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            let keep = match &fate {
                WriteFate::Proceed => data.len(),
                WriteFate::Torn { keep } => (*keep).min(data.len()),
            };
            let mut buf = vec![0u8; self.shared.cfg.page_size];
            buf[..keep].copy_from_slice(&data[..keep]);
            match &mut entry.store {
                Store::Mem(existing) => existing.push(buf.into_boxed_slice()),
                Store::Disk { file, pages: n } => {
                    if let Err(e) = write_at(file, &buf, self.byte_offset(*n)) {
                        err = Some(io_err("write_at", &e));
                        break;
                    }
                    *n += 1;
                }
            }
            written += 1;
            if matches!(fate, WriteFate::Torn { .. }) {
                err = Some(DeviceError::Crashed);
                break;
            }
        }
        Placed { first, written, err }
    }

    fn charge_read(&self, addrs: &[PageAddr], useful: u64, charge_time: bool) {
        if addrs.is_empty() {
            return;
        }
        let t = if charge_time {
            batch_time_ns(&self.shared.cfg, addrs, self.shared.cfg.read_ns)
        } else {
            0
        };
        for s in self.charge_sinks() {
            s.pages_read.add(to_u64(addrs.len()));
            s.bytes_read.add(to_u64(addrs.len()) * to_u64(self.shared.cfg.page_size));
            s.useful_bytes_read.add(useful);
            s.read_time_ns.add(t);
            s.read_batches.add(1);
        }
    }

    fn charge_write(&self, addrs: &[PageAddr]) {
        if addrs.is_empty() {
            return;
        }
        self.trace_writes(addrs);
        self.ftl_writes(addrs);
        // Overwritten pages must not be served stale from the shared cache.
        let cache = self.shared.cache.lock().clone();
        if let Some(c) = cache {
            c.invalidate_addrs(addrs);
        }
        let t = batch_time_ns(&self.shared.cfg, addrs, self.shared.cfg.write_ns);
        for s in self.charge_sinks() {
            s.pages_written.add(to_u64(addrs.len()));
            s.bytes_written.add(to_u64(addrs.len()) * to_u64(self.shared.cfg.page_size));
            s.write_time_ns.add(t);
            s.write_batches.add(1);
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
        .collect()
}

#[cfg(unix)]
fn read_at(file: &fs::File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &fs::File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at(_file: &fs::File, _buf: &mut [u8], _offset: u64) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "disk backend requires unix positional I/O",
    ))
}

#[cfg(not(unix))]
fn write_at(_file: &fs::File, _buf: &[u8], _offset: u64) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "disk backend requires unix positional I/O",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Ssd {
        Ssd::new(SsdConfig::test_small())
    }

    #[test]
    fn roundtrip_single_page() {
        let ssd = dev();
        let f = ssd.open_or_create("a").unwrap();
        let idx = ssd.append_page(f, b"hello").unwrap();
        assert_eq!(idx, 0);
        let page = ssd.read_page(f, 0, 5).unwrap();
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "zero padded");
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let ssd = dev();
        let a = ssd.open_or_create("x").unwrap();
        let b = ssd.open_or_create("x").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, ssd.open_or_create("y").unwrap());
    }

    #[test]
    fn append_grows_and_truncate_clears() {
        let ssd = dev();
        let f = ssd.open_or_create("log").unwrap();
        for i in 0..5u8 {
            ssd.append_page(f, &[i; 16]).unwrap();
        }
        assert_eq!(ssd.num_pages(f).unwrap(), 5);
        let p3 = ssd.read_page(f, 3, 16).unwrap();
        assert_eq!(&p3[..16], &[3u8; 16]);
        ssd.truncate(f).unwrap();
        assert_eq!(ssd.num_pages(f).unwrap(), 0);
    }

    #[test]
    fn write_page_overwrites_in_place() {
        let ssd = dev();
        let f = ssd.open_or_create("v").unwrap();
        ssd.append_page(f, b"old").unwrap();
        ssd.write_page(f, 0, b"new!").unwrap();
        assert_eq!(&ssd.read_page(f, 0, 4).unwrap()[..4], b"new!");
    }

    #[test]
    fn append_retention_pins_the_log_tail_within_budget() {
        let ssd = dev();
        let cache = Arc::new(crate::PageCache::new(1));
        ssd.attach_cache(Arc::clone(&cache));
        let log = ssd.open_or_create("log").unwrap();
        let cold = ssd.open_or_create("cold").unwrap();
        let page = u64::try_from(ssd.page_size()).unwrap();

        // Budget for two pages, armed on `log` only.
        ssd.arm_append_retention(&[log], 2 * page);
        for i in 0..3u8 {
            ssd.append_page(log, &[i; 64]).unwrap();
            ssd.append_page(cold, &[i; 64]).unwrap();
        }
        assert_eq!(ssd.append_retention_unspent(), Some(0), "two pages spent the arming");
        assert_eq!(cache.pinned_pages(), 2, "first two log appends retained, cold file not");

        // Reading the log back hits the retained tail; the third page and
        // the cold file still pay the device.
        ssd.stats().reset();
        let got = ssd
            .read_batch(&[(log, 0, 64), (log, 1, 64), (log, 2, 64), (cold, 0, 64)])
            .unwrap();
        assert_eq!(&got[0][..64], &[0u8; 64]);
        assert_eq!(&got[1][..64], &[1u8; 64]);
        assert!(got[0][64..].iter().all(|&b| b == 0), "retained copy is zero padded");
        assert_eq!(ssd.stats().snapshot().pages_read, 2, "only page 2 and cold hit flash");
        assert_eq!(cache.snapshot().pinned_hits, 2);

        // Truncate-on-consume drops the retained copies with the file.
        ssd.truncate(log).unwrap();
        assert_eq!(cache.pinned_pages(), 0, "truncation drops retained pins");
        ssd.disarm_append_retention();
        assert_eq!(ssd.append_retention_unspent(), None);
    }

    #[test]
    fn stats_account_pages_and_useful_bytes() {
        let ssd = dev();
        let f = ssd.open_or_create("s").unwrap();
        ssd.append_page(f, &[1; 100]).unwrap();
        ssd.append_page(f, &[2; 100]).unwrap();
        let before = ssd.stats().snapshot();
        assert_eq!(before.pages_written, 2);
        ssd.read_batch(&[(f, 0, 10), (f, 1, 20)]).unwrap();
        let after = ssd.stats().snapshot().since(&before);
        assert_eq!(after.pages_read, 2);
        assert_eq!(after.useful_bytes_read, 30);
        assert_eq!(after.bytes_read, 2 * 256);
        assert!(after.read_amplification().unwrap() > 1.0);
        assert_eq!(after.read_batches, 1);
    }

    #[test]
    fn batched_read_is_cheaper_than_serial_reads() {
        let cfg = SsdConfig::test_small();
        let ssd1 = Ssd::new(cfg.clone());
        let f1 = ssd1.open_or_create("a").unwrap();
        for _ in 0..16 {
            ssd1.append_page(f1, &[0; 8]).unwrap();
        }
        ssd1.stats().reset();
        ssd1.read_batch(&(0..16).map(|p| (f1, p, 8)).collect::<Vec<_>>()).unwrap();
        let batched = ssd1.stats().snapshot().read_time_ns;

        let ssd2 = Ssd::new(cfg);
        let f2 = ssd2.open_or_create("a").unwrap();
        for _ in 0..16 {
            ssd2.append_page(f2, &[0; 8]).unwrap();
        }
        ssd2.stats().reset();
        for p in 0..16 {
            ssd2.read_page(f2, p, 8).unwrap();
        }
        let serial = ssd2.stats().snapshot().read_time_ns;
        assert!(
            batched < serial,
            "channel-parallel batch ({batched}) must beat serial ({serial})"
        );
    }

    #[test]
    fn scattered_append_hits_multiple_files() {
        let ssd = dev();
        let a = ssd.open_or_create("a").unwrap();
        let b = ssd.open_or_create("b").unwrap();
        let pa = [7u8; 4];
        let pb = [9u8; 4];
        let idx = ssd.append_scattered(&[(a, &pa), (b, &pb), (a, &pa)]).unwrap();
        assert_eq!(idx, vec![0, 0, 1]);
        assert_eq!(ssd.num_pages(a).unwrap(), 2);
        assert_eq!(ssd.num_pages(b).unwrap(), 1);
        assert_eq!(ssd.stats().snapshot().write_batches, 1);
    }

    #[test]
    fn delete_frees_name_and_types_later_access() {
        let ssd = dev();
        let f = ssd.open_or_create("tmp").unwrap();
        ssd.delete(f).unwrap();
        assert!(ssd.lookup("tmp").is_none());
        assert_eq!(ssd.num_pages(f), Err(DeviceError::Deleted { file: f }));
        assert_eq!(ssd.append_page(f, b"x"), Err(DeviceError::Deleted { file: f }));
        assert_eq!(ssd.read_page(f, 0, 0), Err(DeviceError::Deleted { file: f }));
        let g = ssd.open_or_create("tmp").unwrap();
        assert_ne!(f, g);
    }

    #[test]
    fn disk_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlvc-ssd-test-{}", std::process::id()));
        let ssd = Ssd::new_on_disk(SsdConfig::test_small(), dir.clone()).unwrap();
        let f = ssd.open_or_create("durable").unwrap();
        ssd.append_page(f, b"on real disk").unwrap();
        ssd.append_page(f, b"second page").unwrap();
        let p = ssd.read_page(f, 1, 11).unwrap();
        assert_eq!(&p[..11], b"second page");
        ssd.write_page(f, 0, b"rewritten").unwrap();
        assert_eq!(&ssd.read_page(f, 0, 9).unwrap()[..9], b"rewritten");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_backend_reopen_preserves_contents() {
        let dir = std::env::temp_dir()
            .join(format!("mlvc-ssd-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let ssd = Ssd::new_on_disk(SsdConfig::test_small(), dir.clone()).unwrap();
            let f = ssd.open_or_create("state").unwrap();
            ssd.append_page(f, b"survives restart").unwrap();
            ssd.append_page(f, b"page two").unwrap();
        }
        // A new process (new Ssd over the same directory) must see the
        // previous contents — the property `mlvc resume` depends on.
        let ssd = Ssd::new_on_disk(SsdConfig::test_small(), dir.clone()).unwrap();
        let f = ssd.open_or_create("state").unwrap();
        assert_eq!(ssd.num_pages(f).unwrap(), 2);
        let p = ssd.read_page(f, 0, 16).unwrap();
        assert_eq!(&p[..16], b"survives restart");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let ssd = dev();
        let f = ssd.open_or_create("big").unwrap();
        assert_eq!(
            ssd.append_page(f, &vec![0u8; 257]),
            Err(DeviceError::PayloadTooLarge { len: 257, page_size: 256 })
        );
        ssd.append_page(f, &[1u8; 256]).unwrap();
        assert_eq!(
            ssd.write_page(f, 0, &vec![0u8; 300]),
            Err(DeviceError::PayloadTooLarge { len: 300, page_size: 256 })
        );
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let ssd = dev();
        let f = ssd.open_or_create("a").unwrap();
        assert_eq!(ssd.read_page(f, 0, 0), Err(DeviceError::OutOfBounds { file: f, page: 0 }));
        assert_eq!(
            ssd.write_page(f, 3, b"x"),
            Err(DeviceError::OutOfBounds { file: f, page: 3 })
        );
    }

    #[test]
    fn crash_point_tears_page_and_blocks_device() {
        let ssd = dev();
        let f = ssd.open_or_create("wal").unwrap();
        ssd.install_fault_plan(FaultPlan::crash_after(3, 0xFEED));
        ssd.append_page(f, &[1u8; 256]).unwrap();
        ssd.append_page(f, &[2u8; 256]).unwrap();
        assert_eq!(ssd.append_page(f, &[3u8; 256]), Err(DeviceError::Crashed));
        assert!(ssd.is_crashed());
        // Everything fails until revive — including reads and metadata ops.
        assert_eq!(ssd.read_page(f, 0, 0), Err(DeviceError::Crashed));
        assert_eq!(ssd.truncate(f), Err(DeviceError::Crashed));
        assert_eq!(ssd.open_or_create("other"), Err(DeviceError::Crashed));
        ssd.revive();
        // Durable state: pages 0 and 1 intact, page 2 torn (a strict
        // prefix of the payload, then zeroes).
        assert_eq!(ssd.num_pages(f).unwrap(), 3);
        assert_eq!(ssd.read_page(f, 0, 0).unwrap(), vec![1u8; 256]);
        assert_eq!(ssd.read_page(f, 1, 0).unwrap(), vec![2u8; 256]);
        let torn = ssd.read_page(f, 2, 0).unwrap();
        let keep = torn.iter().take_while(|&&b| b == 3).count();
        assert!(keep < 256, "crash page must not be fully programmed");
        assert!(torn[keep..].iter().all(|&b| b == 0), "tail reads back as zeroes");
        let c = ssd.fault_counters();
        assert_eq!((c.torn_writes, c.crashes), (1, 1));
    }

    #[test]
    fn crash_is_deterministic_across_replays() {
        let run = || {
            let ssd = dev();
            let f = ssd.open_or_create("wal").unwrap();
            ssd.install_fault_plan(FaultPlan::crash_after(2, 99));
            ssd.append_page(f, &[0xAB; 256]).unwrap();
            let _ = ssd.append_page(f, &[0xCD; 256]);
            ssd.revive();
            ssd.read_all(f, |_| 0).unwrap()
        };
        assert_eq!(run(), run(), "same plan, same torn bytes");
    }

    #[test]
    fn transient_read_fault_retries_and_charges_time() {
        let ssd = dev();
        let f = ssd.open_or_create("a").unwrap();
        ssd.append_page(f, &[5u8; 256]).unwrap();
        ssd.stats().reset();
        ssd.read_page(f, 0, 0).unwrap();
        let clean = ssd.stats().snapshot().read_time_ns;
        ssd.install_fault_plan(FaultPlan::default().with_read_faults(1, 2));
        ssd.stats().reset();
        let page = ssd.read_page(f, 0, 0).unwrap();
        assert_eq!(page, vec![5u8; 256], "retried read returns good data");
        let faulted = ssd.stats().snapshot().read_time_ns;
        assert!(faulted > clean, "retries must cost virtual time ({faulted} vs {clean})");
        assert_eq!(ssd.fault_counters().retries_charged, 2);
    }

    #[test]
    fn unrecoverable_read_fault_surfaces_typed_error() {
        let ssd = dev();
        let f = ssd.open_or_create("a").unwrap();
        ssd.append_page(f, &[5u8; 256]).unwrap();
        ssd.install_fault_plan(
            FaultPlan::default().with_read_faults(1, 9).with_max_read_retries(2),
        );
        assert_eq!(
            ssd.read_page(f, 0, 0),
            Err(DeviceError::ReadUnavailable { file: f, page: 0, retries: 2 })
        );
        assert!(!ssd.is_crashed(), "read faults are transient, not crashes");
        ssd.revive();
        ssd.read_page(f, 0, 0).unwrap();
    }

    #[test]
    fn live_ftl_matches_trace_replay() {
        use crate::ftl::FtlConfig;
        let run_writes = |ssd: &Ssd| {
            let f = ssd.open_or_create("log").unwrap();
            for i in 0..10u8 {
                ssd.append_page(f, &[i; 16]).unwrap();
            }
            ssd.truncate(f).unwrap();
            for i in 0..4u8 {
                ssd.append_page(f, &[i; 16]).unwrap();
            }
        };

        // Live model, fed as operations happen.
        let live = dev();
        assert!(!live.ftl_enabled());
        assert!(live.ftl_stats().is_none());
        live.enable_ftl(FtlConfig::default());
        assert!(live.ftl_enabled());
        run_writes(&live);

        // Recorded trace replayed after the fact (the pre-existing flow).
        let rec = dev();
        rec.enable_trace();
        run_writes(&rec);
        let mut model = FtlModel::new(FtlConfig::default());
        model.replay(&rec.take_trace());

        let live_stats = live.ftl_stats().unwrap();
        assert_eq!(live_stats, model.stats(), "live feed must equal replay");
        assert_eq!(live_stats.host_writes, 14);
        // enable_ftl is idempotent: re-enabling keeps accumulated state.
        live.enable_ftl(FtlConfig::default());
        assert_eq!(live.ftl_stats().unwrap().host_writes, 14);
    }

    #[test]
    fn crash_mid_scattered_append_keeps_earlier_pages() {
        let ssd = dev();
        let a = ssd.open_or_create("a").unwrap();
        let b = ssd.open_or_create("b").unwrap();
        ssd.install_fault_plan(FaultPlan::crash_after(2, 1));
        let pa = [1u8; 8];
        let pb = [2u8; 8];
        assert_eq!(
            ssd.append_scattered(&[(a, &pa), (b, &pb), (a, &pa)]),
            Err(DeviceError::Crashed)
        );
        ssd.revive();
        assert_eq!(ssd.num_pages(a).unwrap(), 1, "first write durable");
        assert_eq!(ssd.num_pages(b).unwrap(), 1, "second write torn but placed");
        assert_eq!(&ssd.read_page(a, 0, 0).unwrap()[..8], &pa);
    }
}

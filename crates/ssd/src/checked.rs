//! Checked width conversions for on-disk quantities.
//!
//! The on-disk format speaks `u32` (vertex ids, record counts) and `u64`
//! (page numbers, byte offsets) while in-memory code speaks `usize`. Raw
//! `as` casts between these silently truncate once a dataset outgrows the
//! narrower type, which is why `no-truncating-cast` bans them in the
//! format crates. These helpers are the sanctioned replacements: the
//! lossless directions are free functions built on `From`/`TryFrom`, and
//! the genuinely fallible directions return a typed [`WidthError`].

use std::fmt;

// The lossless claims below assume a pointer width between 32 and 64
// bits; make the assumption explicit so a 16- or 128-bit port fails to
// build here rather than corrupting offsets at runtime.
const _: () = assert!(size_of::<usize>() >= size_of::<u32>());
const _: () = assert!(size_of::<usize>() <= size_of::<u64>());

/// A width conversion failed: `value` does not fit the target type of the
/// conversion named by `what`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthError {
    /// What was being converted (e.g. `"log page record count"`).
    pub what: &'static str,
    /// The offending value, widened for display.
    pub value: u128,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} value {} exceeds the on-disk field width", self.what, self.value)
    }
}

impl std::error::Error for WidthError {}

/// Widen an in-memory count/length to the on-disk `u64`. Lossless: usize
/// is at most 64 bits (const-asserted above).
pub fn to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Widen a `u32` on-disk field (vertex id, file id, record count) to an
/// in-memory index. Lossless: usize is at least 32 bits (const-asserted
/// above).
pub fn idx(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Widen a `u32` on-disk field into `u64` arithmetic. Always lossless.
pub fn wide(v: u32) -> u64 {
    u64::from(v)
}

/// Narrow an on-disk `u64` to an in-memory index, with a typed error for
/// the 32-bit-host case where the value genuinely does not fit.
pub fn to_usize(what: &'static str, v: u64) -> Result<usize, WidthError> {
    usize::try_from(v).map_err(|_| WidthError { what, value: u128::from(v) })
}

/// Index an in-memory buffer with an on-disk `u64` that is bounded by the
/// buffer's length *by construction* (e.g. CSR row offsets, which index
/// the in-memory `col_idx`). On a host where the value cannot fit a
/// `usize` the buffer could never have been allocated either; saturating
/// turns that impossibility into an out-of-bounds panic at the indexing
/// site instead of a silent wrapped read.
pub fn mem_idx(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Narrow a count/length to a `u32` on-disk field with a typed error.
pub fn to_u32(what: &'static str, n: usize) -> Result<u32, WidthError> {
    u32::try_from(n).map_err(|_| WidthError { what, value: n as u128 })
}

/// Byte offset of `page` within a file of `page_size`-byte pages, with a
/// typed error on 64-bit overflow (a corrupt page number or an absurd
/// page size, either of which must not silently wrap into a valid-looking
/// offset).
pub fn page_byte_offset(page: u64, page_size: usize) -> Result<u64, WidthError> {
    page.checked_mul(to_u64(page_size))
        .ok_or(WidthError { what: "page byte offset", value: u128::from(page) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_directions_round_trip() {
        assert_eq!(to_u64(0), 0);
        assert_eq!(to_u64(usize::MAX), usize::MAX as u64);
        assert_eq!(idx(u32::MAX), u32::MAX as usize);
        assert_eq!(wide(7), 7u64);
        assert_eq!(mem_idx(42), 42usize);
    }

    #[test]
    fn fallible_directions_report_typed_errors() {
        assert_eq!(to_usize("x", 5).unwrap(), 5);
        let e = to_u32("record count", usize::MAX).unwrap_err();
        assert_eq!(e.what, "record count");
        assert!(e.to_string().contains("record count"));
    }

    #[test]
    fn page_byte_offset_checks_overflow() {
        assert_eq!(page_byte_offset(3, 16 * 1024).unwrap(), 3 * 16 * 1024);
        assert!(page_byte_offset(u64::MAX, 2).is_err());
    }
}

//! # mlvc-ssd — page-granular SSD simulator
//!
//! Substrate used by every engine in the MultiLogVC reproduction. The paper
//! (Matam et al., IPDPS'21) runs on a real Samsung 860 EVO and performs all
//! I/O in 16 KB page units across multiple flash channels. Every performance
//! claim in the paper is, at its core, a statement about *how many SSD pages*
//! each engine touches and *how well those accesses parallelize across
//! channels*. This crate models exactly that:
//!
//! * storage is a set of named **files**, each a growable sequence of
//!   fixed-size **pages** (default 16 KB, the paper's access granularity);
//! * every page read/write is charged against a **cost model** — a per-page
//!   service time, pipelined across a configurable number of channels, with a
//!   discount for sequential runs on the same channel;
//! * **statistics** record pages/bytes moved and the caller-declared *useful*
//!   bytes of each read, from which read amplification (paper Fig. 3) is
//!   derived.
//!
//! Two backends are provided: an in-memory backend (default; deterministic
//! and fast for tests/benches) and a real file-backed backend (pages live in
//! ordinary files on disk) for out-of-core realism. The accounting is
//! identical for both, so experiment *shapes* do not depend on the backend.
//!
//! ```
//! use mlvc_ssd::{Ssd, SsdConfig};
//!
//! let ssd = Ssd::new(SsdConfig::default());
//! let log = ssd.open_or_create("my.log").unwrap();
//! ssd.append_page(log, b"hello flash").unwrap();
//!
//! // Read it back, declaring how many bytes we actually need — the gap is
//! // the read amplification the paper's edge-log optimizer attacks.
//! let page = ssd.read_page(log, 0, 11).unwrap();
//! assert_eq!(&page[..11], b"hello flash");
//! let stats = ssd.stats().snapshot();
//! assert_eq!(stats.pages_read, 1);
//! assert!(stats.read_amplification().unwrap() > 1000.0); // 11 B of 16 KiB
//! ```
//!
//! Every device operation returns a typed [`DeviceError`] `Result`; a
//! seeded [`FaultPlan`] can deterministically crash the device after N
//! page writes (tearing the in-flight page) or inject transient read
//! faults — the substrate of the `mlvc-recover` crash-point sweep.

mod cache;
pub mod checked;
mod config;
mod cost;
mod device;
mod fault;
mod ftl;
mod queue;
mod stats;
pub mod sync;

pub use cache::{CachePolicy, CacheSnapshot, PageCache, TenantCacheStats, TenantId};
pub use config::SsdConfig;
pub use cost::{batch_time_ns, channel_of, PageAddr};
pub use device::{Backend, FileId, Ssd};
pub use fault::{DeviceError, FaultCounters, FaultPlan};
pub use ftl::{FtlConfig, FtlModel, FtlOp, FtlStats, Lpa};
pub use queue::{IoQueue, QueueWaitStats, Ticket};
pub use stats::{RelaxedCounter, SsdStats, SsdStatsSnapshot};

/// Default SSD page size used throughout the reproduction (bytes).
///
/// The paper performs all accesses in 16 KB granularity: "we perform all the
/// IO accesses in granularities of 16KB, typical SSD page size" (§VI).
pub const DEFAULT_PAGE_SIZE: usize = 16 * 1024;

/// Default number of flash channels the device exposes.
///
/// The paper exploits "SSD's capability for providing parallel writes to
/// multiple channels" (§I) and stripes each log across all channels (§V-A3).
/// Four channels at the default service times give ~530 MB/s reads and
/// ~270 MB/s sustained writes — the SATA-class envelope of the paper's
/// Samsung 860 EVO.
pub const DEFAULT_CHANNELS: usize = 4;

//! Poison-free `Mutex`/`RwLock` wrappers over `std::sync`.
//!
//! The simulator and the apps never rely on poisoning for correctness — a
//! panicked worker already aborts the run — so these wrappers recover the
//! inner guard on poison instead of returning a `Result`. That keeps lock
//! call sites infallible (no `unwrap()` in library code, per the
//! `no-panic-in-lib` lint) while staying on `std` only.
//!
//! Under the `race-detect` feature every acquire and release additionally
//! transfers a vector clock through the lock (`mlvc_par::race`), so
//! critical sections on one lock are happens-before ordered for the
//! detector's `Tracked` shadow cells. `RwLock` readers are modeled like
//! writers — conservative: it can only add ordering edges, never invent a
//! race. With the feature off the wrappers compile to the plain poison-free
//! guards with zero overhead.

#[cfg(feature = "race-detect")]
use mlvc_par::race;
#[cfg(feature = "race-detect")]
use std::sync::OnceLock;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "race-detect")]
    race_id: OnceLock<usize>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "race-detect")]
            race_id: OnceLock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard {
            #[cfg(feature = "race-detect")]
            race_id: acquired(&self.race_id),
            inner,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "race-detect")]
    race_id: OnceLock<usize>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "race-detect")]
            race_id: OnceLock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockReadGuard {
            #[cfg(feature = "race-detect")]
            race_id: acquired(&self.race_id),
            inner,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        RwLockWriteGuard {
            #[cfg(feature = "race-detect")]
            race_id: acquired(&self.race_id),
            inner,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Run the detector's acquire edge for a freshly taken lock (the lock id is
/// assigned lazily on first acquisition — `new` stays `const`). Called
/// *after* the underlying lock is held, so the previous holder's release
/// clock is already published.
#[cfg(feature = "race-detect")]
fn acquired(race_id: &OnceLock<usize>) -> usize {
    let id = *race_id.get_or_init(race::new_lock_id);
    race::lock_acquire(id);
    id
}

macro_rules! guard {
    ($name:ident, $std:ident, $($mutable:ident)?) => {
        pub struct $name<'a, T: ?Sized> {
            #[cfg(feature = "race-detect")]
            race_id: usize,
            inner: std::sync::$std<'a, T>,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $(impl<T: ?Sized> std::ops::DerefMut for $name<'_, T> {
            fn $mutable(&mut self) -> &mut T {
                &mut self.inner
            }
        })?

        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        // Release edge: runs before the inner guard drops, i.e. while the
        // lock is still held, so the clock is published before the next
        // acquirer can observe the unlock.
        #[cfg(feature = "race-detect")]
        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                race::lock_release(self.race_id);
            }
        }
    };
}

guard!(MutexGuard, MutexGuard, deref_mut);
guard!(RwLockReadGuard, RwLockReadGuard,);
guard!(RwLockWriteGuard, RwLockWriteGuard, deref_mut);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(41u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}

//! Poison-free `Mutex`/`RwLock` wrappers over `std::sync`.
//!
//! The simulator and the apps never rely on poisoning for correctness — a
//! panicked worker already aborts the run — so these wrappers recover the
//! inner guard on poison instead of returning a `Result`. That keeps lock
//! call sites infallible (no `unwrap()` in library code, per the
//! `no-panic-in-lib` lint) while staying on `std` only.

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(41u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}

//! Property: a mutation merge invalidates exactly the dirty partitions'
//! cached pages (DESIGN.md §18).
//!
//! The merge rewrites each dirty interval's CSR extents with
//! truncate+append, and the device drops every cached (and pinned) copy
//! of a truncated file — so a stale read is impossible by construction.
//! Clean intervals' pages are untouched and must stay resident: their
//! re-reads are served entirely from the cache, with zero device reads
//! and bytes identical to the pre-merge content.

use std::sync::Arc;

use mlvc_graph::{Csr, EdgeListBuilder, StoredGraph, VertexIntervals};
use mlvc_mutate::{EdgeMutation, MutationConfig, MutationLog};
use mlvc_ssd::{CachePolicy, FileId, PageCache, Ssd, SsdConfig};

const NUM_INTERVALS: u32 = 8;

fn ring(n: usize) -> Csr {
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for v in 0..n as u32 {
        b.push(v, (v + 1) % n as u32);
    }
    b.build()
}

fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s
}

/// Every (file, page, bytes) request covering one interval's extents.
fn interval_reqs(ssd: &Ssd, sg: &StoredGraph, iv: u32) -> Vec<(FileId, u64, usize)> {
    let mut reqs = Vec::new();
    for f in [sg.rowptr_file(iv), sg.colidx_file(iv)] {
        for p in 0..ssd.num_pages(f).unwrap() {
            reqs.push((f, p, ssd.page_size()));
        }
    }
    reqs
}

#[test]
fn merge_invalidates_exactly_the_dirty_partitions_cached_pages() {
    let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
    // Cache far larger than the graph: nothing is ever evicted, so any
    // device read after warming can only come from invalidation.
    ssd.attach_cache(Arc::new(PageCache::with_policy(512, CachePolicy::TwoQ)));
    let g = ring(64);
    let iv = VertexIntervals::uniform(g.num_vertices(), NUM_INTERVALS as usize);
    let sg = StoredGraph::store_with(&ssd, &g, "inv", iv.clone()).unwrap();
    let mut mlog = MutationLog::new(Arc::clone(&ssd), iv.clone(), MutationConfig::default(), "inv").unwrap();

    // Warm every interval's extents into the cache and keep the bytes.
    let mut warm: Vec<Vec<Vec<u8>>> = Vec::new();
    for i in 0..NUM_INTERVALS {
        warm.push(ssd.read_batch(&interval_reqs(&ssd, &sg, i)).unwrap());
    }

    // A random batch of brand-new edges from a seeded LCG, clustered on
    // the low vertices so some intervals stay clean.
    let mut seed = 0x1EE7u64;
    let mut batch = Vec::new();
    for _ in 0..12 {
        let s = (lcg(&mut seed) % 16) as u32;
        let d = 32 + (lcg(&mut seed) % 16) as u32;
        batch.push(EdgeMutation::add(s, d));
    }
    mlog.ingest(&batch).unwrap();
    let outcome = mlog.merge(&sg, 4).unwrap();
    assert!(!outcome.delta.dirty.is_empty(), "the batch must dirty something");

    // Rewritten partitions are those holding a mutated edge's *source*
    // (out-edge owner); `delta.dirty` also lists destination endpoints
    // for re-convergence seeding, but their partitions are not touched.
    let mut dirty_ivs = vec![false; NUM_INTERVALS as usize];
    for &(s, _) in outcome.delta.added.iter().chain(&outcome.delta.removed) {
        dirty_ivs[iv.interval_of(s) as usize] = true;
    }
    assert!(dirty_ivs.iter().any(|d| !d), "some intervals must stay clean");
    assert!(dirty_ivs.iter().any(|d| *d), "some intervals must be dirty");

    for (i, &dirty) in dirty_ivs.iter().enumerate() {
        let reqs = interval_reqs(&ssd, &sg, i as u32);
        let before = ssd.stats().snapshot();
        let data = ssd.read_batch(&reqs).unwrap();
        let read = ssd.stats().snapshot().since(&before).pages_read;
        if dirty {
            assert!(
                read > 0,
                "interval {i} was rewritten; its pages must come from the device"
            );
        } else {
            assert_eq!(read, 0, "clean interval {i} must be served from the cache");
            assert_eq!(data, warm[i], "clean interval {i} content must be unchanged");
        }
    }

    // Stale reads are impossible: every accepted edge is visible through
    // the cached device immediately after the merge, and was absent from
    // the pre-merge cache (so serving a stale page would fail here).
    for m in &batch {
        let src_iv = iv.interval_of(m.src);
        let (rowptr, colidx, _) = sg.read_interval(src_iv).unwrap();
        let k = (m.src - iv.start(src_iv)) as usize;
        let adj = &colidx[rowptr[k] as usize..rowptr[k + 1] as usize];
        assert!(adj.contains(&m.dst), "edge {}->{} missing after merge", m.src, m.dst);
    }
}

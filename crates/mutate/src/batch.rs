//! Edge mutation batches: the client-facing add/remove records, the
//! last-op-wins deduplication rule, and the pure upsert applied to an
//! adjacency list — shared by the on-device merge, the in-memory golden
//! path (`apply_to_csr`), and the tests that pin them against each other.

use mlvc_graph::checked::to_u64;
use mlvc_graph::{Csr, VertexId};

use crate::error::MutationError;

/// What a mutation does to the edge `(src, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationOp {
    /// Ensure the edge is present. If `dst` is already an out-neighbor of
    /// `src` the adjacency list is left completely untouched (no reorder,
    /// no duplicate), so replaying an acknowledged batch is a no-op.
    Add,
    /// Delete every occurrence of the edge. Removing an absent edge is a
    /// no-op, for the same replay-idempotence reason.
    Remove,
}

/// One requested edge mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeMutation {
    pub src: VertexId,
    pub dst: VertexId,
    pub op: MutationOp,
}

impl EdgeMutation {
    pub fn add(src: VertexId, dst: VertexId) -> Self {
        EdgeMutation { src, dst, op: MutationOp::Add }
    }

    pub fn remove(src: VertexId, dst: VertexId) -> Self {
        EdgeMutation { src, dst, op: MutationOp::Remove }
    }
}

/// What a merge changed, for incremental re-convergence: the edges that
/// actually appeared or disappeared (requests that were already satisfied
/// are dropped), plus the sorted, deduplicated endpoints of those edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationDelta {
    /// Edges now present that were absent before the merge.
    pub added: Vec<(VertexId, VertexId)>,
    /// Edges now absent that were present before the merge.
    pub removed: Vec<(VertexId, VertexId)>,
    /// Endpoints of the effective changes, sorted and deduplicated — the
    /// vertices whose adjacency or reachability may have changed.
    pub dirty: Vec<VertexId>,
}

impl MutationDelta {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Collapse a batch to one operation per `(src, dst)` pair — the last
/// request wins, matching the order the client issued them. Output is
/// sorted by `(src, dst)` so downstream processing is deterministic
/// regardless of request interleaving within the batch.
pub fn dedup_last_wins(muts: &[EdgeMutation]) -> Vec<EdgeMutation> {
    let mut last: std::collections::BTreeMap<(VertexId, VertexId), MutationOp> =
        std::collections::BTreeMap::new();
    for m in muts {
        last.insert((m.src, m.dst), m.op);
    }
    last.into_iter()
        .map(|((src, dst), op)| EdgeMutation { src, dst, op })
        .collect()
}

/// Apply one vertex's deduplicated mutations to its adjacency list.
///
/// The upsert rule: surviving old neighbors keep their order; effective
/// additions are appended in ascending `dst` order. Returns the new list
/// plus the effective `(added dsts, removed dsts)` — `removed` counts
/// pairs, not occurrences (a duplicated edge disappears as one pair).
pub fn upsert_adjacency(
    old: &[VertexId],
    adds: &[VertexId],
    removes: &[VertexId],
) -> (Vec<VertexId>, Vec<VertexId>, Vec<VertexId>) {
    let removed_set: std::collections::BTreeSet<VertexId> = removes.iter().copied().collect();
    let old_set: std::collections::BTreeSet<VertexId> = old.iter().copied().collect();
    let new_adj: Vec<VertexId> =
        old.iter().copied().filter(|d| !removed_set.contains(d)).collect();
    let mut eff_added: Vec<VertexId> =
        adds.iter().copied().filter(|d| !old_set.contains(d)).collect();
    eff_added.sort_unstable();
    eff_added.dedup();
    let eff_removed: Vec<VertexId> =
        removed_set.iter().copied().filter(|d| old_set.contains(d)).collect();
    let mut out = new_adj;
    out.extend_from_slice(&eff_added);
    (out, eff_added, eff_removed)
}

/// Validate that every endpoint of `muts` addresses a vertex of an
/// `num_vertices`-vertex graph.
pub fn validate_range(muts: &[EdgeMutation], num_vertices: usize) -> Result<(), MutationError> {
    let limit = to_u64(num_vertices);
    for m in muts {
        for v in [m.src, m.dst] {
            if u64::from(v) >= limit {
                return Err(MutationError::OutOfRange { v, num_vertices });
            }
        }
    }
    Ok(())
}

/// Golden in-memory path: apply a batch to a CSR and return the mutated
/// graph plus the effective delta. This is the semantics the on-device
/// merge must match bit-for-bit (`tests/mutation_equivalence.rs` pins the
/// two against each other through full engine runs).
pub fn apply_to_csr(
    base: &Csr,
    muts: &[EdgeMutation],
) -> Result<(Csr, MutationDelta), MutationError> {
    if base.has_weights() {
        return Err(MutationError::WeightedUnsupported);
    }
    validate_range(muts, base.num_vertices())?;
    let deduped = dedup_last_wins(muts);

    let mut delta = MutationDelta::default();
    let mut row_ptr: Vec<u64> = vec![0];
    let mut col_idx: Vec<VertexId> = Vec::with_capacity(base.num_edges());
    let mut k = 0usize;
    for v in 0..base.num_vertices() {
        let vid = to_u64(v);
        // The deduped batch is sorted by (src, dst): this vertex's slice.
        let lo = k;
        while k < deduped.len() && u64::from(deduped[k].src) == vid {
            k += 1;
        }
        let ops = &deduped[lo..k];
        let old = base.out_edges(idx_to_vertex(v)?);
        if ops.is_empty() {
            col_idx.extend_from_slice(old);
        } else {
            let adds: Vec<VertexId> =
                ops.iter().filter(|m| m.op == MutationOp::Add).map(|m| m.dst).collect();
            let removes: Vec<VertexId> =
                ops.iter().filter(|m| m.op == MutationOp::Remove).map(|m| m.dst).collect();
            let (new_adj, eff_added, eff_removed) = upsert_adjacency(old, &adds, &removes);
            let src = idx_to_vertex(v)?;
            delta.added.extend(eff_added.iter().map(|&d| (src, d)));
            delta.removed.extend(eff_removed.iter().map(|&d| (src, d)));
            col_idx.extend_from_slice(&new_adj);
        }
        row_ptr.push(to_u64(col_idx.len()));
    }
    finish_dirty(&mut delta);
    Ok((Csr::from_parts(row_ptr, col_idx, None), delta))
}

/// Fill `delta.dirty` from the effective edge lists (sorted, deduplicated).
pub(crate) fn finish_dirty(delta: &mut MutationDelta) {
    let mut dirty: Vec<VertexId> = delta
        .added
        .iter()
        .chain(delta.removed.iter())
        .flat_map(|&(s, d)| [s, d])
        .collect();
    dirty.sort_unstable();
    dirty.dedup();
    delta.dirty = dirty;
}

fn idx_to_vertex(v: usize) -> Result<VertexId, MutationError> {
    Ok(mlvc_graph::checked::to_u32("vertex id", v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_last_op_per_pair() {
        let muts = [
            EdgeMutation::add(1, 2),
            EdgeMutation::remove(1, 2),
            EdgeMutation::add(3, 4),
            EdgeMutation::add(1, 2),
        ];
        let d = dedup_last_wins(&muts);
        assert_eq!(d, vec![EdgeMutation::add(1, 2), EdgeMutation::add(3, 4)]);
    }

    #[test]
    fn upsert_is_idempotent_and_order_preserving() {
        let old = [7u32, 3, 9];
        let (adj, added, removed) = upsert_adjacency(&old, &[3, 5, 1], &[9, 100]);
        assert_eq!(adj, vec![7, 3, 1, 5], "survivors keep order, adds sorted at tail");
        assert_eq!(added, vec![1, 5], "3 was already present");
        assert_eq!(removed, vec![9], "100 was absent");
        // Replay: applying the same ops to the result changes nothing.
        let (again, added2, removed2) = upsert_adjacency(&adj, &[3, 5, 1], &[9, 100]);
        assert_eq!(again, adj);
        assert!(added2.is_empty() && removed2.is_empty());
    }

    #[test]
    fn upsert_removes_all_occurrences() {
        let (adj, _, removed) = upsert_adjacency(&[4, 2, 4, 4], &[], &[4]);
        assert_eq!(adj, vec![2]);
        assert_eq!(removed, vec![4], "one pair even with three occurrences");
    }

    #[test]
    fn apply_to_csr_matches_manual() {
        let mut b = mlvc_graph::EdgeListBuilder::new(4);
        b.push(0, 1);
        b.push(0, 2);
        b.push(2, 3);
        let base = b.build();
        let (g, delta) = apply_to_csr(
            &base,
            &[
                EdgeMutation::add(0, 3),
                EdgeMutation::remove(0, 2),
                EdgeMutation::add(1, 1), // self-loop
                EdgeMutation::remove(3, 0), // absent
                EdgeMutation::add(2, 3), // already present
            ],
        )
        .unwrap();
        assert_eq!(g.out_edges(0), &[1, 3]);
        assert_eq!(g.out_edges(1), &[1]);
        assert_eq!(g.out_edges(2), &[3]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(delta.added, vec![(0, 3), (1, 1)]);
        assert_eq!(delta.removed, vec![(0, 2)]);
        assert_eq!(delta.dirty, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_range_and_weighted_are_typed_errors() {
        let mut b = mlvc_graph::EdgeListBuilder::new(2);
        b.push(0, 1);
        let base = b.build();
        let err = apply_to_csr(&base, &[EdgeMutation::add(0, 9)]).unwrap_err();
        assert!(matches!(err, MutationError::OutOfRange { v: 9, .. }));

        let mut wb = mlvc_graph::EdgeListBuilder::new(2);
        wb.push_weighted(0, 1, 1.5);
        let weighted = wb.build();
        let err = apply_to_csr(&weighted, &[EdgeMutation::add(1, 0)]).unwrap_err();
        assert_eq!(err, MutationError::WeightedUnsupported);
    }
}

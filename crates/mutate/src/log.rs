//! The on-device mutation log and its crash-consistent CSR merge.
//!
//! Ingested batches are deduplicated, bucketed by the *source* vertex's
//! interval (the merge rewrites the source's CSR partition), and buffered
//! in memory using the multi-log's page format — `[u32 count][count ×
//! 16-byte records]` with `dest = dst`, `src = src`, `data = opcode` —
//! spilling whole interval buffers to `<tag>.mut.<i>` extents under memory
//! pressure with multi-log-style eviction accounting.
//!
//! The merge follows the PR-2 data-before-manifest protocol (DESIGN.md
//! §11, §17): new interval extents are written to shadow files first, then
//! a CRC'd manifest naming them commits the merge into one of two rotating
//! slots, then the primaries are rewritten and the consumed logs retired
//! with an empty manifest. A crash at any page write recovers to either
//! the pre-merge or the post-merge CSR — never a torn one — by replaying
//! the newest valid manifest. Batches are durable only once merged;
//! recovery discards unmerged log records and clients replay the batch,
//! which is safe because the upsert rule is idempotent.

use std::sync::Arc;

use mlvc_graph::checked::{idx, to_u32, to_u64, to_usize};
use mlvc_graph::{
    append_u32s, append_u64s, IntervalId, StoredGraph, VertexId, VertexIntervals, COL_IDX_BYTES,
    ROW_PTR_BYTES,
};
use mlvc_log::{decode_log_page, encode_log_page, page_record_capacity, Update};
use mlvc_recover::crc32;
use mlvc_ssd::{DeviceError, FileId, IoQueue, Ssd};

use crate::batch::{dedup_last_wins, finish_dirty, upsert_adjacency, validate_range};
use crate::{EdgeMutation, MutationDelta, MutationError, MutationOp};

/// Opcode stored in an update record's payload.
const OP_ADD: u64 = 0;
const OP_REMOVE: u64 = 1;

/// Manifest page layout: magic, version, seq, new edge total, entry count.
const MANIFEST_MAGIC: u32 = 0x4D4C_4D54; // "MLMT"
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_HEADER_BYTES: usize = 28;
/// Per rewritten interval: interval id (u32) + new colidx entry count (u64).
const MANIFEST_ENTRY_BYTES: usize = 12;
const MANIFEST_CRC_BYTES: usize = 4;

/// Memory budget for buffered, not-yet-flushed mutation records.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    pub buffer_bytes: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig { buffer_bytes: 1 << 20 }
    }
}

/// Cumulative mutation-pipeline counters (per-merge snapshots ride along
/// in [`MergeOutcome`]; the engine folds them into `SuperstepStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Raw mutation requests accepted by `ingest`.
    pub ingested: u64,
    /// Requests dropped by last-op-wins deduplication within their batch.
    pub deduped: u64,
    /// Log pages flushed to the device (eviction + merge-time flushes).
    pub log_pages_flushed: u64,
    /// Memory-pressure evictions (a whole interval buffer spilled).
    pub evictions: u64,
    /// Completed merges.
    pub merges: u64,
    /// Edges that actually appeared (effective additions).
    pub edges_added: u64,
    /// Edge pairs that actually disappeared (effective removals).
    pub edges_removed: u64,
    /// CSR interval partitions rewritten by merges.
    pub intervals_merged: u64,
    /// Distinct endpoints of effective changes.
    pub dirty_vertices: u64,
}

impl MutationStats {
    /// Fold another stats snapshot into this one (field-wise sum).
    pub fn absorb(&mut self, o: &MutationStats) {
        self.ingested += o.ingested;
        self.deduped += o.deduped;
        self.log_pages_flushed += o.log_pages_flushed;
        self.evictions += o.evictions;
        self.merges += o.merges;
        self.edges_added += o.edges_added;
        self.edges_removed += o.edges_removed;
        self.intervals_merged += o.intervals_merged;
        self.dirty_vertices += o.dirty_vertices;
    }
}

/// What one `ingest` call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records admitted to the log after in-batch deduplication.
    pub accepted: u64,
    /// Records the in-batch deduplication collapsed away.
    pub deduped: u64,
    /// Log pages spilled to the device by this call's evictions.
    pub pages_flushed: u64,
}

/// What one merge changed, plus its counter snapshot.
#[derive(Debug, Clone, Default)]
pub struct MergeOutcome {
    pub delta: MutationDelta,
    pub stats: MutationStats,
}

/// A decoded, CRC-valid merge manifest.
struct Manifest {
    seq: u64,
    new_num_edges: u64,
    /// (interval, new colidx entry count) per rewritten partition.
    entries: Vec<(IntervalId, u64)>,
}

/// The per-interval mutation log over one device. Methods take `&mut
/// self`; concurrent front ends (the serving daemon, the engine hook)
/// share one behind `mlvc_ssd::sync::Mutex` with tight guard scopes.
pub struct MutationLog {
    ssd: Arc<Ssd>,
    intervals: VertexIntervals,
    /// In-memory per-interval record buffers (append order preserved).
    buffers: Vec<Vec<Update>>,
    /// Records already spilled to each interval's device log.
    device_records: Vec<u64>,
    buffered: usize,
    /// Flush threshold in records, derived from the config budget but at
    /// least one page so eviction always makes progress.
    cap_records: usize,
    page_cap: usize,
    log_files: Vec<FileId>,
    shadow_rowptr: Vec<FileId>,
    shadow_colidx: Vec<FileId>,
    manifest_files: [FileId; 2],
    /// Highest manifest sequence written or observed; the next manifest
    /// takes `seq + 1` in slot `(seq + 1) % 2`.
    seq: u64,
    stats: MutationStats,
}

impl MutationLog {
    /// Open (or create) the mutation log `tag` over `ssd`, scanning any
    /// surviving on-device state — pending log records from a previous
    /// process and the newest manifest sequence. Fresh tags scan nothing.
    ///
    /// `intervals` must be the partition of the graph the log will merge
    /// into; `merge` re-validates this against the graph it is handed.
    pub fn new(
        ssd: Arc<Ssd>,
        intervals: VertexIntervals,
        cfg: MutationConfig,
        tag: &str,
    ) -> Result<Self, MutationError> {
        let page_cap = page_record_capacity(ssd.page_size());
        let cap_records = (cfg.buffer_bytes / mlvc_log::UPDATE_BYTES).max(page_cap);
        let n_iv = intervals.num_intervals();
        let mut log_files = Vec::with_capacity(n_iv);
        let mut shadow_rowptr = Vec::with_capacity(n_iv);
        let mut shadow_colidx = Vec::with_capacity(n_iv);
        for i in intervals.iter_ids() {
            log_files.push(ssd.open_or_create(&format!("{tag}.mut.{i}"))?);
            shadow_rowptr.push(ssd.open_or_create(&format!("{tag}.mut.shadow.rowptr.{i}"))?);
            shadow_colidx.push(ssd.open_or_create(&format!("{tag}.mut.shadow.colidx.{i}"))?);
        }
        let manifest_files = [
            ssd.open_or_create(&format!("{tag}.mut.manifest.0"))?,
            ssd.open_or_create(&format!("{tag}.mut.manifest.1"))?,
        ];

        let mut device_records = vec![0u64; n_iv];
        for (k, &f) in log_files.iter().enumerate() {
            let mut records = Vec::new();
            for p in 0..ssd.num_pages(f)? {
                let page = ssd.read_page(f, p, ssd.page_size())?;
                decode_log_page(&page, &mut records);
            }
            device_records[k] = to_u64(records.len());
        }
        let seq = {
            let mut best = 0u64;
            for &f in &manifest_files {
                if let Some(m) = read_manifest(&ssd, f)? {
                    best = best.max(m.seq);
                }
            }
            best
        };

        Ok(MutationLog {
            ssd,
            buffers: vec![Vec::new(); n_iv],
            device_records,
            buffered: 0,
            cap_records,
            page_cap,
            log_files,
            shadow_rowptr,
            shadow_colidx,
            manifest_files,
            seq,
            intervals,
            stats: MutationStats::default(),
        })
    }

    /// The interval partition this log buckets by.
    pub fn intervals(&self) -> &VertexIntervals {
        &self.intervals
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> MutationStats {
        self.stats
    }

    /// Mutation records awaiting a merge (buffered + spilled).
    pub fn pending(&self) -> u64 {
        to_u64(self.buffered) + self.device_records.iter().sum::<u64>()
    }

    /// Admit a batch: validate endpoints, collapse it to one op per edge
    /// (last request wins), bucket the survivors by source interval, and
    /// spill the fullest buffers if the memory budget is exceeded.
    pub fn ingest(&mut self, batch: &[EdgeMutation]) -> Result<IngestStats, MutationError> {
        validate_range(batch, self.intervals.num_vertices())?;
        let deduped = dedup_last_wins(batch);
        let accepted = to_u64(deduped.len());
        let dropped = to_u64(batch.len() - deduped.len());
        self.stats.ingested += to_u64(batch.len());
        self.stats.deduped += dropped;
        for m in &deduped {
            let op = match m.op {
                MutationOp::Add => OP_ADD,
                MutationOp::Remove => OP_REMOVE,
            };
            let i = self.intervals.interval_of(m.src);
            self.buffers[idx(i)].push(Update::new(m.dst, m.src, op));
        }
        self.buffered += deduped.len();

        let mut pages_flushed = 0u64;
        while self.buffered > self.cap_records {
            // Fullest buffer first (ties: lowest interval id) — the same
            // pressure-relief order the multi-log's evictor uses.
            let Some(i) = (0..self.buffers.len()).max_by_key(|&i| (self.buffers[i].len(), usize::MAX - i))
            else {
                break;
            };
            if self.buffers[i].is_empty() {
                break;
            }
            pages_flushed += self.flush_buffer(i)?;
            self.stats.evictions += 1;
        }
        Ok(IngestStats { accepted, deduped: dropped, pages_flushed })
    }

    /// Spill every buffered record to the device logs (no merge). Used
    /// before handing the device to another process and by `merge`'s
    /// stage 0. Returns the page count written.
    pub fn flush(&mut self) -> Result<u64, MutationError> {
        let mut pages = 0u64;
        for i in 0..self.buffers.len() {
            pages += self.flush_buffer(i)?;
        }
        Ok(pages)
    }

    /// Spill interval `i`'s whole buffer to its device log, preserving
    /// append order. Returns the page count written.
    fn flush_buffer(&mut self, i: usize) -> Result<u64, MutationError> {
        if self.buffers[i].is_empty() {
            return Ok(0);
        }
        let records = std::mem::take(&mut self.buffers[i]);
        let pages: Vec<Vec<u8>> = records
            .chunks(self.page_cap)
            .map(|c| encode_log_page(c, self.ssd.page_size()))
            .collect();
        let refs: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
        self.ssd.append_pages(self.log_files[i], &refs)?;
        self.buffered -= records.len();
        self.device_records[i] += to_u64(records.len());
        let flushed = to_u64(pages.len());
        self.stats.log_pages_flushed += flushed;
        Ok(flushed)
    }

    /// Merge every pending mutation into `graph`'s CSR partitions under
    /// the data-before-manifest protocol, reading through a submission
    /// queue of the given depth. Returns the effective delta.
    pub fn merge(
        &mut self,
        graph: &StoredGraph,
        queue_depth: usize,
    ) -> Result<MergeOutcome, MutationError> {
        if graph.has_weights() {
            return Err(MutationError::WeightedUnsupported);
        }
        if graph.intervals() != &self.intervals {
            return Err(MutationError::Corrupt(
                "graph interval partition does not match the mutation log".to_string(),
            ));
        }
        // Stage 0: make the whole batch readable from the device logs.
        self.flush()?;
        if self.pending() == 0 {
            return Ok(MergeOutcome::default());
        }

        let ioq = IoQueue::new(Arc::clone(&self.ssd), queue_depth.max(1));
        let page_size = self.ssd.page_size();

        // Stage 1: drain and decode each interval's log, collapse to one
        // op per edge (device order is ingest order, so last-op-wins over
        // the log reproduces the client's intent).
        let mut per_interval: Vec<Vec<EdgeMutation>> = Vec::with_capacity(self.log_files.len());
        for (k, &f) in self.log_files.iter().enumerate() {
            if self.device_records[k] == 0 {
                per_interval.push(Vec::new());
                continue;
            }
            let reqs: Vec<_> =
                (0..self.ssd.num_pages(f)?).map(|p| (f, p, page_size)).collect();
            let pages = queued_read(&ioq, reqs)?;
            let mut records = Vec::new();
            for page in &pages {
                decode_log_page(page, &mut records);
            }
            let mut muts = Vec::with_capacity(records.len());
            for u in records {
                let op = match u.data {
                    OP_ADD => MutationOp::Add,
                    OP_REMOVE => MutationOp::Remove,
                    other => {
                        return Err(MutationError::Corrupt(format!(
                            "bad mutation opcode {other} in interval {k} log"
                        )))
                    }
                };
                muts.push(EdgeMutation { src: u.src, dst: u.dest, op });
            }
            per_interval.push(dedup_last_wins(&muts));
        }

        // Stage 2: per affected interval (ascending), read the partition,
        // apply the upsert, and collect rewrites. Intervals whose requests
        // were all already satisfied are skipped entirely.
        let mut delta = MutationDelta::default();
        let mut rewrites: Vec<(IntervalId, Vec<u64>, Vec<VertexId>, u64)> = Vec::new();
        for i in self.intervals.iter_ids() {
            let muts = &per_interval[idx(i)];
            if muts.is_empty() {
                continue;
            }
            let range = self.intervals.range(i);
            let n_local = self.intervals.len_of(i);
            let rowptr =
                fetch_u64s(&ioq, page_size, graph.rowptr_file(i), n_local + 1)?;
            let old_edges = rowptr.last().copied().unwrap_or(0);
            let colidx = fetch_u32s(
                &ioq,
                page_size,
                graph.colidx_file(i),
                to_usize("interval edge count", old_edges)?,
            )?;

            let mut new_rowptr: Vec<u64> = Vec::with_capacity(n_local + 1);
            let mut new_colidx: Vec<VertexId> = Vec::with_capacity(colidx.len());
            new_rowptr.push(0);
            let mut changed = false;
            let mut k = 0usize;
            for v in range.clone() {
                let local = idx(v - range.start);
                let lo = to_usize("rowptr offset", rowptr[local])?;
                let hi = to_usize("rowptr offset", rowptr[local + 1])?;
                let old = &colidx[lo..hi];
                let ops_lo = k;
                while k < muts.len() && muts[k].src == v {
                    k += 1;
                }
                let ops = &muts[ops_lo..k];
                if ops.is_empty() {
                    new_colidx.extend_from_slice(old);
                } else {
                    let adds: Vec<VertexId> = ops
                        .iter()
                        .filter(|m| m.op == MutationOp::Add)
                        .map(|m| m.dst)
                        .collect();
                    let removes: Vec<VertexId> = ops
                        .iter()
                        .filter(|m| m.op == MutationOp::Remove)
                        .map(|m| m.dst)
                        .collect();
                    let (new_adj, eff_added, eff_removed) =
                        upsert_adjacency(old, &adds, &removes);
                    changed |= !eff_added.is_empty() || !eff_removed.is_empty();
                    delta.added.extend(eff_added.iter().map(|&d| (v, d)));
                    delta.removed.extend(eff_removed.iter().map(|&d| (v, d)));
                    new_colidx.extend_from_slice(&new_adj);
                }
                new_rowptr.push(to_u64(new_colidx.len()));
            }
            if changed {
                rewrites.push((i, new_rowptr, new_colidx, old_edges));
            }
        }
        finish_dirty(&mut delta);

        // Stages 3–5, chunked so each commit's manifest fits one page:
        // shadow extents first, then the manifest commit, then the
        // primary install from the in-memory copies (recovery re-reads
        // the shadows instead).
        let per_manifest =
            (page_size - MANIFEST_HEADER_BYTES - MANIFEST_CRC_BYTES) / MANIFEST_ENTRY_BYTES;
        let mut new_total = graph.num_edges();
        for chunk in rewrites.chunks(per_manifest.max(1)) {
            let mut entries = Vec::with_capacity(chunk.len());
            for (i, new_rowptr, new_colidx, old_edges) in chunk {
                let srp = self.shadow_rowptr[idx(*i)];
                self.ssd.truncate(srp)?;
                append_u64s(&self.ssd, srp, new_rowptr)?;
                let sci = self.shadow_colidx[idx(*i)];
                self.ssd.truncate(sci)?;
                append_u32s(&self.ssd, sci, new_colidx)?;
                new_total = new_total + to_u64(new_colidx.len()) - old_edges;
                entries.push((*i, to_u64(new_colidx.len())));
            }
            self.write_manifest(new_total, &entries)?;
            for (i, new_rowptr, new_colidx, _) in chunk {
                let rp = graph.rowptr_file(*i);
                self.ssd.truncate(rp)?;
                append_u64s(&self.ssd, rp, new_rowptr)?;
                let ci = graph.colidx_file(*i);
                self.ssd.truncate(ci)?;
                append_u32s(&self.ssd, ci, new_colidx)?;
            }
            graph.set_num_edges(new_total);
        }

        // Stage 6: retire the consumed logs and seal with an empty
        // manifest, so recovery knows the merge fully landed.
        for &f in &self.log_files {
            self.ssd.truncate(f)?;
        }
        self.device_records.fill(0);
        self.write_manifest(graph.num_edges(), &[])?;

        let stats = MutationStats {
            merges: 1,
            edges_added: to_u64(delta.added.len()),
            edges_removed: to_u64(delta.removed.len()),
            intervals_merged: to_u64(rewrites.len()),
            dirty_vertices: to_u64(delta.dirty.len()),
            ..MutationStats::default()
        };
        self.stats.absorb(&stats);
        Ok(MergeOutcome { delta, stats })
    }

    /// Bring the device back to a merge boundary after a crash: replay
    /// the newest CRC-valid manifest (re-installing its shadow extents —
    /// idempotent if the install already ran) and discard unmerged log
    /// records. Returns whether a committed merge was re-installed.
    ///
    /// Batches whose merge had not committed are dropped here by design;
    /// clients replay them, which the upsert rule makes a no-op for any
    /// part that did land.
    pub fn recover(&mut self, graph: &StoredGraph) -> Result<bool, MutationError> {
        if graph.intervals() != &self.intervals {
            return Err(MutationError::Corrupt(
                "graph interval partition does not match the mutation log".to_string(),
            ));
        }
        let mut newest: Option<Manifest> = None;
        for &f in &self.manifest_files {
            if let Some(m) = read_manifest(&self.ssd, f)? {
                if newest.as_ref().is_none_or(|b| m.seq > b.seq) {
                    newest = Some(m);
                }
            }
        }
        let reinstalled = match &newest {
            Some(m) if !m.entries.is_empty() => {
                for &(i, n_colidx) in &m.entries {
                    if idx(i) >= self.intervals.num_intervals() {
                        return Err(MutationError::Corrupt(format!(
                            "manifest names interval {i} outside the partition"
                        )));
                    }
                    let n_local = self.intervals.len_of(i);
                    let rowptr =
                        mlvc_graph::read_u64s(&self.ssd, self.shadow_rowptr[idx(i)], n_local + 1)?;
                    let colidx = mlvc_graph::read_u32s(
                        &self.ssd,
                        self.shadow_colidx[idx(i)],
                        to_usize("shadow colidx entries", n_colidx)?,
                    )?;
                    let rp = graph.rowptr_file(i);
                    self.ssd.truncate(rp)?;
                    append_u64s(&self.ssd, rp, &rowptr)?;
                    let ci = graph.colidx_file(i);
                    self.ssd.truncate(ci)?;
                    append_u32s(&self.ssd, ci, &colidx)?;
                }
                graph.set_num_edges(m.new_num_edges);
                true
            }
            _ => false,
        };
        self.seq = newest.map_or(self.seq, |m| m.seq.max(self.seq));
        for &f in &self.log_files {
            self.ssd.truncate(f)?;
        }
        self.device_records.fill(0);
        for b in &mut self.buffers {
            b.clear();
        }
        self.buffered = 0;
        if reinstalled {
            // Seal, so a second recovery does not replay the install.
            self.write_manifest(graph.num_edges(), &[])?;
        }
        Ok(reinstalled)
    }

    /// Encode and commit a manifest at `seq + 1` into the rotating slot.
    fn write_manifest(
        &mut self,
        new_num_edges: u64,
        entries: &[(IntervalId, u64)],
    ) -> Result<(), MutationError> {
        let seq = self.seq + 1;
        let mut buf = Vec::with_capacity(
            MANIFEST_HEADER_BYTES + entries.len() * MANIFEST_ENTRY_BYTES + MANIFEST_CRC_BYTES,
        );
        buf.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&new_num_edges.to_le_bytes());
        buf.extend_from_slice(&to_u32("manifest entry count", entries.len())?.to_le_bytes());
        for &(i, n) in entries {
            buf.extend_from_slice(&i.to_le_bytes());
            buf.extend_from_slice(&n.to_le_bytes());
        }
        buf.extend_from_slice(&crc32(&buf).to_le_bytes());
        let slot = self.manifest_files[to_usize("manifest slot", seq % 2)?];
        self.ssd.truncate(slot)?;
        self.ssd.append_page(slot, &buf)?;
        self.seq = seq;
        Ok(())
    }
}

/// Read and validate the manifest in `file`, if any.
fn read_manifest(ssd: &Ssd, file: FileId) -> Result<Option<Manifest>, MutationError> {
    if ssd.num_pages(file)? == 0 {
        return Ok(None);
    }
    let page = ssd.read_page(file, 0, ssd.page_size())?;
    if page.len() < MANIFEST_HEADER_BYTES + MANIFEST_CRC_BYTES {
        return Ok(None);
    }
    let Some((magic, rest)) = page.split_first_chunk::<4>() else { return Ok(None) };
    if u32::from_le_bytes(*magic) != MANIFEST_MAGIC {
        return Ok(None);
    }
    let Some((version, rest)) = rest.split_first_chunk::<4>() else { return Ok(None) };
    if u32::from_le_bytes(*version) != MANIFEST_VERSION {
        return Ok(None);
    }
    let Some((seq, rest)) = rest.split_first_chunk::<8>() else { return Ok(None) };
    let Some((total, rest)) = rest.split_first_chunk::<8>() else { return Ok(None) };
    let Some((count, rest)) = rest.split_first_chunk::<4>() else { return Ok(None) };
    let n = idx(u32::from_le_bytes(*count));
    let body = MANIFEST_HEADER_BYTES + n * MANIFEST_ENTRY_BYTES;
    if page.len() < body + MANIFEST_CRC_BYTES {
        return Ok(None);
    }
    let Some(stored_crc) = page.get(body..body + MANIFEST_CRC_BYTES) else { return Ok(None) };
    let Ok(stored_crc) = <[u8; 4]>::try_from(stored_crc) else { return Ok(None) };
    if crc32(&page[..body]) != u32::from_le_bytes(stored_crc) {
        return Ok(None);
    }
    let mut entries = Vec::with_capacity(n);
    let mut cursor = rest;
    for _ in 0..n {
        let Some((iv, r)) = cursor.split_first_chunk::<4>() else { return Ok(None) };
        let Some((ec, r)) = r.split_first_chunk::<8>() else { return Ok(None) };
        entries.push((u32::from_le_bytes(*iv), u64::from_le_bytes(*ec)));
        cursor = r;
    }
    Ok(Some(Manifest {
        seq: u64::from_le_bytes(*seq),
        new_num_edges: u64::from_le_bytes(*total),
        entries,
    }))
}

/// One submit/fetch/complete round on the queue.
fn queued_read(
    ioq: &IoQueue,
    reqs: Vec<(FileId, u64, usize)>,
) -> Result<Vec<Vec<u8>>, DeviceError> {
    if reqs.is_empty() {
        return Ok(Vec::new());
    }
    let ticket = ioq.submit_read(reqs);
    let pages = ioq.fetch(ticket)?;
    ioq.complete(ticket);
    Ok(pages)
}

/// Read `n` little-endian u64 entries from `file` through the queue
/// (same packing as `mlvc_graph`'s extent layout).
fn fetch_u64s(
    ioq: &IoQueue,
    page_size: usize,
    file: FileId,
    n: usize,
) -> Result<Vec<u64>, DeviceError> {
    let per_page = page_size / ROW_PTR_BYTES;
    let reqs: Vec<_> = (0..n.div_ceil(per_page))
        .map(|p| (file, to_u64(p), per_page.min(n - p * per_page) * ROW_PTR_BYTES))
        .collect();
    let pages = queued_read(ioq, reqs)?;
    let mut out = Vec::with_capacity(n);
    for (k, page) in pages.iter().enumerate() {
        let entries = per_page.min(n - k * per_page);
        for chunk in page.chunks_exact(ROW_PTR_BYTES).take(entries) {
            if let Ok(b) = chunk.try_into() {
                out.push(u64::from_le_bytes(b));
            }
        }
    }
    Ok(out)
}

/// Read `n` little-endian u32 entries from `file` through the queue.
fn fetch_u32s(
    ioq: &IoQueue,
    page_size: usize,
    file: FileId,
    n: usize,
) -> Result<Vec<VertexId>, DeviceError> {
    let per_page = page_size / COL_IDX_BYTES;
    let reqs: Vec<_> = (0..n.div_ceil(per_page))
        .map(|p| (file, to_u64(p), per_page.min(n - p * per_page) * COL_IDX_BYTES))
        .collect();
    let pages = queued_read(ioq, reqs)?;
    let mut out = Vec::with_capacity(n);
    for (k, page) in pages.iter().enumerate() {
        let entries = per_page.min(n - k * per_page);
        for chunk in page.chunks_exact(COL_IDX_BYTES).take(entries) {
            if let Ok(b) = chunk.try_into() {
                out.push(u32::from_le_bytes(b));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_to_csr;
    use mlvc_ssd::SsdConfig;

    fn setup(scale: u32) -> (Arc<Ssd>, StoredGraph) {
        let g = mlvc_gen::rmat(mlvc_gen::RmatParams::social(scale, 4), 11);
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let iv = VertexIntervals::uniform(g.num_vertices(), 4);
        let sg = StoredGraph::store_with(&ssd, &g, "m", iv).unwrap();
        (ssd, sg)
    }

    fn log_for(sg: &StoredGraph) -> MutationLog {
        MutationLog::new(
            Arc::clone(sg.ssd()),
            sg.intervals().clone(),
            MutationConfig::default(),
            "m",
        )
        .unwrap()
    }

    #[test]
    fn merge_matches_in_memory_golden() {
        let (_ssd, sg) = setup(7);
        let base = sg.to_csr().unwrap();
        let batch = vec![
            EdgeMutation::add(1, 100),
            EdgeMutation::add(100, 1),
            EdgeMutation::remove(0, base.out_edges(0).first().copied().unwrap_or(0)),
            EdgeMutation::add(5, 5),
            EdgeMutation::remove(5, 5),
            EdgeMutation::add(5, 5),
        ];
        let (golden, golden_delta) = apply_to_csr(&base, &batch).unwrap();

        let mut log = log_for(&sg);
        log.ingest(&batch).unwrap();
        assert!(log.pending() > 0);
        let out = log.merge(&sg, 4).unwrap();
        assert_eq!(log.pending(), 0);
        assert_eq!(out.delta, golden_delta);
        let merged = sg.to_csr().unwrap();
        assert_eq!(merged.row_ptr(), golden.row_ptr());
        assert_eq!(merged.col_idx(), golden.col_idx());
        assert_eq!(sg.num_edges(), to_u64(golden.num_edges()));
        // Replaying the same batch is a no-op merge.
        log.ingest(&batch).unwrap();
        let again = log.merge(&sg, 4).unwrap();
        assert!(again.delta.is_empty());
        assert_eq!(again.stats.intervals_merged, 0);
        let replayed = sg.to_csr().unwrap();
        assert_eq!(replayed.col_idx(), golden.col_idx());
    }

    #[test]
    fn eviction_spills_pages_and_merge_reads_them_back() {
        let (_ssd, sg) = setup(6);
        let base = sg.to_csr().unwrap();
        let mut log = MutationLog::new(
            Arc::clone(sg.ssd()),
            sg.intervals().clone(),
            MutationConfig { buffer_bytes: 1 }, // floor: one page of records
            "m",
        )
        .unwrap();
        let n = to_u32("n", base.num_vertices()).unwrap();
        let batch: Vec<EdgeMutation> =
            (0..n).map(|v| EdgeMutation::add(v, (v + 7) % n)).collect();
        let st = log.ingest(&batch).unwrap();
        assert!(st.pages_flushed > 0, "tiny budget must spill");
        assert!(log.stats().evictions > 0);
        let (golden, _) = apply_to_csr(&base, &batch).unwrap();
        log.merge(&sg, 1).unwrap();
        assert_eq!(sg.to_csr().unwrap().col_idx(), golden.col_idx());
    }

    #[test]
    fn log_state_survives_reopen() {
        let (ssd, sg) = setup(6);
        let batch = vec![EdgeMutation::add(0, 3), EdgeMutation::add(1, 2)];
        {
            let mut log = MutationLog::new(
                Arc::clone(&ssd),
                sg.intervals().clone(),
                MutationConfig { buffer_bytes: 1 },
                "m",
            )
            .unwrap();
            log.ingest(&batch).unwrap();
            log.flush().unwrap();
            assert_eq!(log.buffered, 0, "flush spilled everything");
        }
        let mut reopened = log_for(&sg);
        assert_eq!(reopened.pending(), 2, "device records rediscovered");
        let base = sg.to_csr().unwrap();
        let (golden, _) = apply_to_csr(&base, &batch).unwrap();
        reopened.merge(&sg, 2).unwrap();
        assert_eq!(sg.to_csr().unwrap().col_idx(), golden.col_idx());
    }

    #[test]
    fn weighted_graphs_are_rejected() {
        let ssd = Arc::new(Ssd::new(SsdConfig::test_small()));
        let mut b = mlvc_graph::EdgeListBuilder::new(4);
        b.push_weighted(0, 1, 2.0);
        b.push_weighted(1, 2, 3.0);
        let g = b.build();
        let iv = VertexIntervals::uniform(4, 2);
        let sg = StoredGraph::store_with(&ssd, &g, "w", iv).unwrap();
        let mut log = log_for(&sg);
        log.ingest(&[EdgeMutation::add(2, 3)]).unwrap();
        assert_eq!(log.merge(&sg, 1).unwrap_err(), MutationError::WeightedUnsupported);
    }

    #[test]
    fn out_of_range_batch_is_rejected_before_logging() {
        let (_ssd, sg) = setup(6);
        let mut log = log_for(&sg);
        let err = log.ingest(&[EdgeMutation::add(0, u32::MAX)]).unwrap_err();
        assert!(matches!(err, MutationError::OutOfRange { .. }));
        assert_eq!(log.pending(), 0);
    }
}

//! # mlvc-mutate — streaming graph mutation service
//!
//! The third leg of the roadmap's "mutable, multi-tenant, and
//! distributed": live add/remove-edge batches against a stored graph,
//! with results indistinguishable from rebuilding the graph cold.
//!
//! * [`EdgeMutation`] / [`MutationOp`] — the client-facing batch records.
//!   Semantics are *ensure-present* / *remove-all-occurrences* with
//!   last-op-wins deduplication per `(src, dst)` pair, so replaying an
//!   acknowledged batch is always a no-op.
//! * [`MutationLog`] — per-interval on-device delta buckets in the
//!   multi-log page format, with memory-pressure eviction accounting;
//!   [`MutationLog::merge`] folds them into the stored CSR partitions
//!   under the PR-2 data-before-manifest protocol (shadow extents → CRC'd
//!   manifest in rotating slots → install → retire), and
//!   [`MutationLog::recover`] replays the newest committed merge after a
//!   crash — the CSR is always the pre- or post-merge one, never torn.
//! * [`MutationDelta`] — the *effective* changes a merge made, feeding
//!   incremental re-convergence: only vertices whose adjacency actually
//!   changed (and their targets) need re-activation.
//! * [`apply_to_csr`] — the in-memory golden semantics the on-device
//!   merge is pinned against, also used by the CLI's `--out` export.
//!
//! See DESIGN.md §17 for the log format, the merge commit protocol, and
//! the incremental activation rule.

mod batch;
mod error;
mod log;

pub use batch::{
    apply_to_csr, dedup_last_wins, upsert_adjacency, validate_range, EdgeMutation, MutationDelta,
    MutationOp,
};
pub use error::MutationError;
pub use log::{IngestStats, MergeOutcome, MutationConfig, MutationLog, MutationStats};

use std::fmt;

use mlvc_graph::VertexId;
use mlvc_ssd::checked::WidthError;
use mlvc_ssd::DeviceError;

/// Typed failures of the mutation pipeline. Ingest validation errors
/// (`OutOfRange`, `WeightedUnsupported`) are client mistakes and leave the
/// log untouched; `Device` and `Corrupt` surface storage trouble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The underlying device failed (including injected crash faults).
    Device(DeviceError),
    /// An index exceeded the platform's addressable width.
    Width(WidthError),
    /// An edge endpoint is outside the stored graph's vertex range.
    OutOfRange { v: VertexId, num_vertices: usize },
    /// The stored graph carries edge weights; batched structural mutation
    /// resets weights (see `StoredGraph::rewrite_interval`), so weighted
    /// graphs are rejected up front instead of silently zeroing values.
    WeightedUnsupported,
    /// On-device mutation state failed validation (bad opcode, interval
    /// mismatch, malformed manifest payload).
    Corrupt(String),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::Device(e) => write!(f, "device error: {e}"),
            MutationError::Width(e) => write!(f, "width error: {e}"),
            MutationError::OutOfRange { v, num_vertices } => {
                write!(f, "vertex {v} out of range (graph has {num_vertices} vertices)")
            }
            MutationError::WeightedUnsupported => {
                write!(f, "structural mutation of weighted graphs is unsupported")
            }
            MutationError::Corrupt(msg) => write!(f, "corrupt mutation state: {msg}"),
        }
    }
}

impl std::error::Error for MutationError {}

impl From<DeviceError> for MutationError {
    fn from(e: DeviceError) -> Self {
        MutationError::Device(e)
    }
}

impl From<WidthError> for MutationError {
    fn from(e: WidthError) -> Self {
        MutationError::Width(e)
    }
}

impl MutationError {
    /// Collapse into the engine's error type: device faults pass through
    /// (so crash recovery sees `DeviceError::Crashed` unchanged), the rest
    /// become descriptive I/O errors.
    pub fn into_device_error(self) -> DeviceError {
        match self {
            MutationError::Device(e) => e,
            other => DeviceError::Io(other.to_string()),
        }
    }
}

use mlvc_graph::Csr;

/// Degree-distribution summary for Table I style reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub mean_degree: f64,
    pub median_degree: usize,
    pub p99_degree: usize,
    /// Fraction of all edge endpoints held by the top 1% of vertices —
    /// a quick skew indicator (≈0.01 for uniform, ≫0.01 for power law).
    pub top1pct_edge_share: f64,
    pub isolated_vertices: usize,
}

/// Compute [`DegreeStats`] for a graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices();
    let mut degs: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let total: usize = degs.iter().sum();
    let top = n.div_ceil(100);
    let top_sum: usize = degs[n - top..].iter().sum();
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        min_degree: *degs.first().unwrap_or(&0),
        max_degree: *degs.last().unwrap_or(&0),
        mean_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        median_degree: degs.get(n / 2).copied().unwrap_or(0),
        p99_degree: degs.get(n * 99 / 100).copied().unwrap_or(0),
        top1pct_edge_share: if total == 0 { 0.0 } else { top_sum as f64 / total as f64 },
        isolated_vertices: degs.iter().take_while(|&&d| d == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{complete, star};

    #[test]
    fn star_stats() {
        let s = degree_stats(&star(10));
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.num_edges, 18);
        assert_eq!(s.isolated_vertices, 0);
    }

    #[test]
    fn complete_graph_is_uniform() {
        let s = degree_stats(&complete(20));
        assert_eq!(s.min_degree, s.max_degree);
        assert_eq!(s.median_degree, 19);
        assert!((s.mean_degree - 19.0).abs() < 1e-9);
    }

    #[test]
    fn rmat_is_skewed_complete_is_not() {
        let r = degree_stats(&crate::rmat(crate::RmatParams::social(11, 8), 2));
        let k = degree_stats(&complete(64));
        assert!(r.top1pct_edge_share > 3.0 * k.top1pct_edge_share);
        assert!(r.isolated_vertices > 0, "rmat leaves some vertices isolated");
    }
}

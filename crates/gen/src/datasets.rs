use mlvc_graph::Csr;

use crate::rmat::{rmat, RmatParams};

/// A named evaluation dataset (Table I of the paper, scaled down).
pub struct Dataset {
    /// Short name used in experiment output ("CF", "YWS").
    pub name: &'static str,
    /// What the dataset stands in for.
    pub stands_for: &'static str,
    pub graph: Csr,
}

/// Scaled-down stand-in for **com-friendster** (paper Table I:
/// 124.8 M vertices, 3.6 B edges): a dense, social-style R-MAT graph.
///
/// `scale` is the log2 vertex count; the default used by the experiment
/// harness is 15 (32 Ki vertices, ~1 M stored edges) which preserves the
/// paper's graph:memory ratio once the memory budget is scaled equally.
pub fn cf_mini(scale: u32, seed: u64) -> Dataset {
    Dataset {
        name: "CF",
        stands_for: "com-friendster (SNAP), social network",
        graph: rmat(RmatParams::social(scale, 16), seed),
    }
}

/// Scaled-down stand-in for **YahooWebScope** (paper Table I:
/// 1.41 B vertices, 12.9 B edges): a sparser, more skewed web-style R-MAT
/// graph with roughly 2× the vertices of `cf_mini` at the same scale knob,
/// mirroring the paper's vertex-heavy web graph.
pub fn yws_mini(scale: u32, seed: u64) -> Dataset {
    Dataset {
        name: "YWS",
        stands_for: "Yahoo WebScope 2002 hyperlink graph",
        graph: rmat(RmatParams::web(scale + 1, 8), seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cf_is_denser_than_yws() {
        let cf = cf_mini(10, 1);
        let yws = yws_mini(10, 1);
        let cf_density = cf.graph.num_edges() as f64 / cf.graph.num_vertices() as f64;
        let yws_density = yws.graph.num_edges() as f64 / yws.graph.num_vertices() as f64;
        assert!(cf_density > yws_density, "cf {cf_density} vs yws {yws_density}");
        assert!(yws.graph.num_vertices() > cf.graph.num_vertices());
    }

    #[test]
    fn names_match_paper_table1() {
        assert_eq!(cf_mini(8, 0).name, "CF");
        assert_eq!(yws_mini(8, 0).name, "YWS");
    }
}

use crate::rng::SeededRng;
use mlvc_graph::{Csr, EdgeListBuilder, VertexId};

/// Stochastic block model parameters: `communities` equal-size blocks over
/// `n` vertices; expected `intra_degree` neighbors inside the block and
/// `inter_degree` outside. Planted community structure gives the CDLP
/// application (paper §VII) a ground truth to converge toward.
#[derive(Debug, Clone, Copy)]
pub struct SbmParams {
    pub n: usize,
    pub communities: usize,
    pub intra_degree: f64,
    pub inter_degree: f64,
}

/// Generate an SBM graph, deterministic in `seed`.
pub fn sbm(p: SbmParams, seed: u64) -> Csr {
    assert!(p.communities >= 1 && p.n >= p.communities);
    let mut rng = SeededRng::seed_from_u64(seed);
    let block = p.n / p.communities;
    let mut b = EdgeListBuilder::new(p.n)
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true);
    let m_intra = (p.n as f64 * p.intra_degree / 2.0) as usize;
    let m_inter = (p.n as f64 * p.inter_degree / 2.0) as usize;
    for _ in 0..m_intra {
        let c = rng.gen_range(0..p.communities);
        let lo = c * block;
        let hi = if c == p.communities - 1 { p.n } else { lo + block };
        let s = rng.gen_range(lo..hi) as VertexId;
        let d = rng.gen_range(lo..hi) as VertexId;
        b.push(s, d);
    }
    for _ in 0..m_inter {
        let s = rng.gen_range(0..p.n) as VertexId;
        let d = rng.gen_range(0..p.n) as VertexId;
        b.push(s, d);
    }
    b.build()
}

/// Ground-truth community of a vertex under the equal-block layout.
pub fn sbm_community(p: &SbmParams, v: VertexId) -> usize {
    ((v as usize) / (p.n / p.communities)).min(p.communities - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_edges_dominate() {
        let p = SbmParams { n: 1000, communities: 4, intra_degree: 10.0, inter_degree: 1.0 };
        let g = sbm(p, 3);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (s, d) in g.edges() {
            if sbm_community(&p, s) == sbm_community(&p, d) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn deterministic() {
        let p = SbmParams { n: 200, communities: 2, intra_degree: 6.0, inter_degree: 0.5 };
        assert_eq!(sbm(p, 9), sbm(p, 9));
    }

    #[test]
    fn community_assignment_covers_all() {
        let p = SbmParams { n: 103, communities: 4, intra_degree: 4.0, inter_degree: 0.4 };
        for v in 0..103u32 {
            assert!(sbm_community(&p, v) < 4);
        }
    }
}

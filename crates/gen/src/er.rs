use crate::rng::SeededRng;
use mlvc_graph::{Csr, EdgeListBuilder, VertexId};

/// Erdős–Rényi G(n, m): `m` undirected edges drawn uniformly at random
/// (self-loops and duplicates removed, so the result may have slightly
/// fewer than `m` distinct edges). Deterministic in `seed`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2);
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut b = EdgeListBuilder::new(n)
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true);
    b.reserve(m);
    for _ in 0..m {
        let src = rng.gen_range(0..n) as VertexId;
        let dst = rng.gen_range(0..n) as VertexId;
        b.push(src, dst);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roughly_m_edges_both_directions() {
        let g = erdos_renyi(1000, 5000, 11);
        // Stored edges ≈ 2m minus collisions/self-loops.
        assert!(g.num_edges() > 9000 && g.num_edges() <= 10000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 300, 5), erdos_renyi(100, 300, 5));
    }

    #[test]
    fn degrees_are_balanced() {
        let g = erdos_renyi(2000, 20000, 2);
        let max = (0..2000u32).map(|v| g.degree(v)).max().unwrap();
        // ER has no heavy tail: max degree stays within a small factor of mean.
        let mean = g.num_edges() as f64 / 2000.0;
        assert!((max as f64) < mean * 3.0, "max {max} vs mean {mean}");
    }
}

//! # mlvc-gen — synthetic graph generators and dataset registry
//!
//! The paper evaluates on com-friendster (SNAP) and the Yahoo WebScope 2002
//! web graph — 3.6 B and 12.9 B edge datasets that are proprietary or far
//! beyond this environment. Per the reproduction plan (DESIGN.md §2) we
//! substitute deterministic synthetic graphs with the same *structural*
//! properties the paper's arguments rest on:
//!
//! * **power-law degree distributions** (RMAT) — these drive the paper's
//!   read-amplification analysis ("the vast majority of SSD pages contain
//!   the out-edges of multiple vertices", §IV-C);
//! * **undirected edges materialized in both directions** (§VI);
//! * a **social-like** dataset (`cf_mini`, dense, low diameter) and a
//!   **web-like** dataset (`yws_mini`, sparser, higher diameter, more
//!   skewed) standing in for com-friendster and YahooWebScope.
//!
//! All generators take an explicit seed and use the in-repo deterministic
//! RNG ([`rng::SeededRng`], xoshiro256++) so outputs are reproducible
//! across platforms, runs, and dependency upgrades.

mod ba;
mod datasets;
mod er;
mod rmat;
pub mod rng;
mod sbm;
mod simple;
mod stats;

pub use ba::barabasi_albert;
pub use datasets::{cf_mini, yws_mini, Dataset};
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use sbm::{sbm, sbm_community, SbmParams};
pub use simple::{complete, cycle, grid, path, star};
pub use stats::{degree_stats, DegreeStats};

use crate::rng::SeededRng;
use mlvc_graph::{Csr, EdgeListBuilder, VertexId};

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_vertex` existing vertices chosen proportionally to degree.
/// Produces a scale-free graph with an exact power-law tail — useful for
/// stressing page-utilization behaviour with extreme hubs.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> Csr {
    assert!(m_per_vertex >= 1 && n > m_per_vertex);
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut b = EdgeListBuilder::new(n)
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true);
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m_per_vertex);
    // Seed clique over the first m_per_vertex + 1 vertices.
    for i in 0..=m_per_vertex {
        for j in 0..i {
            b.push(i as VertexId, j as VertexId);
            pool.push(i as VertexId);
            pool.push(j as VertexId);
        }
    }
    for v in (m_per_vertex + 1)..n {
        let mut targets = Vec::with_capacity(m_per_vertex);
        let mut guard = 0;
        while targets.len() < m_per_vertex && guard < 100 * m_per_vertex {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v as VertexId && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        for &t in &targets {
            b.push(v as VertexId, t);
            pool.push(v as VertexId);
            pool.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_late_vertex_attaches() {
        let g = barabasi_albert(500, 3, 9);
        for v in 4..500u32 {
            assert!(g.degree(v) >= 3, "vertex {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn has_hubs() {
        let g = barabasi_albert(2000, 2, 1);
        let max = (0..2000u32).map(|v| g.degree(v)).max().unwrap();
        assert!(max > 40, "preferential attachment should grow hubs, max={max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(300, 2, 4), barabasi_albert(300, 2, 4));
    }
}

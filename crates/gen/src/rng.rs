//! Deterministic pseudo-random number generator for graph generation and
//! tests.
//!
//! xoshiro256++ seeded through SplitMix64 — the standard pairing from
//! Blackman & Vigna. In-repo (no external `rand` crate) so that the
//! workspace builds offline and generator output is stable across toolchain
//! and dependency upgrades: every dataset in EXPERIMENTS.md is a pure
//! function of `(params, seed)` and nothing else.
//!
//! Not cryptographic. Do not use for anything security-sensitive.

use std::ops::Range;

/// Deterministic RNG used by every generator and randomized test.
#[derive(Debug, Clone)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Derive a full 256-bit state from a 64-bit seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SeededRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool` with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in a half-open range. Implemented for the integer and
    /// float ranges the generators use; panics on an empty range.
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range on an empty range");
        // Rejection zone keeps the multiply-shift reduction unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone || zone == 0 {
                return hi;
            }
        }
    }
}

/// Types that can be sampled uniformly from a `Range` by [`SeededRng`].
pub trait RangeSample: Sized {
    fn sample(rng: &mut SeededRng, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sample {
    ($($ty:ty),*) => {$(
        impl RangeSample for $ty {
            fn sample(rng: &mut SeededRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.bounded_u64(span) as Self
            }
        }
    )*};
}

impl_int_sample!(usize, u64, u32);

impl RangeSample for f64 {
    fn sample(rng: &mut SeededRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on an empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

impl RangeSample for f32 {
    fn sample(rng: &mut SeededRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on an empty range");
        range.start + (rng.gen_f64() as f32) * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SeededRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&f));
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = SeededRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        SeededRng::seed_from_u64(0).gen_range(5usize..5);
    }
}

//! Small deterministic topologies used heavily in unit and property tests:
//! their algorithmic ground truths (BFS levels, colorings, MIS sizes) are
//! known in closed form.

use mlvc_graph::{Csr, EdgeListBuilder, VertexId};

/// Path 0–1–2–…–(n-1), undirected.
pub fn path(n: usize) -> Csr {
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for v in 1..n {
        b.push((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Cycle of length n, undirected.
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3);
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for v in 0..n {
        b.push(v as VertexId, ((v + 1) % n) as VertexId);
    }
    b.build()
}

/// rows×cols grid, undirected, vertex (r, c) = r*cols + c.
pub fn grid(rows: usize, cols: usize) -> Csr {
    let n = rows * cols;
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as VertexId;
            if c + 1 < cols {
                b.push(v, v + 1);
            }
            if r + 1 < rows {
                b.push(v, v + cols as VertexId);
            }
        }
    }
    b.build()
}

/// Star: center 0 connected to 1..n-1, undirected.
pub fn star(n: usize) -> Csr {
    assert!(n >= 2);
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for v in 1..n {
        b.push(0, v as VertexId);
    }
    b.build()
}

/// Complete graph K_n, undirected.
pub fn complete(n: usize) -> Csr {
    let mut b = EdgeListBuilder::new(n).symmetrize(true);
    for i in 0..n {
        for j in (i + 1)..n {
            b.push(i as VertexId, j as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(6);
        for v in 0..6u32 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Corner has 2 neighbors, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn star_center_degree() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        for v in 1..10u32 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_graph() {
        let g = complete(5);
        for v in 0..5u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.num_edges(), 20);
    }
}

use crate::rng::SeededRng;
use mlvc_graph::{Csr, EdgeListBuilder, VertexId};

/// Parameters of the recursive-matrix (R-MAT) generator.
///
/// `2^scale` vertices, `edge_factor * 2^scale` undirected edges before
/// dedup/self-loop removal. The (a, b, c, d) quadrant probabilities control
/// skew; `noise` perturbs them per level so degree distributions smooth out
/// (standard Graph500 practice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub scale: u32,
    pub edge_factor: usize,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
    pub noise: f64,
}

impl RmatParams {
    /// Graph500-style social-network skew (stands in for com-friendster).
    pub fn social(scale: u32, edge_factor: usize) -> Self {
        RmatParams { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: 0.05 }
    }

    /// More skewed, sparser quadrants typical of web crawls (stands in for
    /// the Yahoo WebScope hyperlink graph).
    pub fn web(scale: u32, edge_factor: usize) -> Self {
        RmatParams { scale, edge_factor, a: 0.65, b: 0.15, c: 0.15, d: 0.05, noise: 0.10 }
    }

    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    pub fn num_edges_target(&self) -> usize {
        self.edge_factor << self.scale
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
        assert!(self.scale >= 1 && self.scale <= 30);
        assert!(self.edge_factor >= 1);
    }
}

/// Generate an undirected R-MAT graph (both directions stored, self-loops
/// dropped, duplicates removed), deterministically from `seed`.
pub fn rmat(params: RmatParams, seed: u64) -> Csr {
    params.validate();
    let n = params.num_vertices();
    let m = params.num_edges_target();
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut b = EdgeListBuilder::new(n)
        .symmetrize(true)
        .dedup(true)
        .drop_self_loops(true);
    b.reserve(m);
    for _ in 0..m {
        let (src, dst) = sample_edge(&params, &mut rng);
        b.push(src, dst);
    }
    b.build()
}

fn sample_edge(p: &RmatParams, rng: &mut SeededRng) -> (VertexId, VertexId) {
    let mut src = 0u64;
    let mut dst = 0u64;
    for _ in 0..p.scale {
        // Per-level noisy quadrant probabilities.
        let na = p.a * (1.0 + p.noise * (rng.gen_f64() - 0.5));
        let nb = p.b * (1.0 + p.noise * (rng.gen_f64() - 0.5));
        let nc = p.c * (1.0 + p.noise * (rng.gen_f64() - 0.5));
        let nd = p.d * (1.0 + p.noise * (rng.gen_f64() - 0.5));
        let total = na + nb + nc + nd;
        let r: f64 = rng.gen_f64() * total;
        src <<= 1;
        dst <<= 1;
        if r < na {
            // top-left quadrant: neither bit set
        } else if r < na + nb {
            dst |= 1;
        } else if r < na + nb + nc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src as VertexId, dst as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let p = RmatParams::social(8, 4);
        let a = rmat(p, 7);
        let b = rmat(p, 7);
        assert_eq!(a, b);
        let c = rmat(p, 8);
        assert_ne!(a, c, "different seed, different graph");
    }

    #[test]
    fn undirected_and_clean() {
        let g = rmat(RmatParams::social(8, 4), 1);
        let n = g.num_vertices();
        assert_eq!(n, 256);
        // No self loops, every edge has its reverse.
        for (s, d) in g.edges() {
            assert_ne!(s, d);
            assert!(g.out_edges(d).contains(&s), "missing reverse of {s}->{d}");
        }
        // In-degree == out-degree (undirected, both directions stored).
        let ind = g.in_degrees();
        for v in 0..n as u32 {
            assert_eq!(ind[v as usize] as usize, g.degree(v));
        }
    }

    #[test]
    fn power_law_skew() {
        let g = rmat(RmatParams::social(12, 8), 3);
        let n = g.num_vertices();
        let mut degs: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degs[..n / 100].iter().sum();
        let total: usize = degs.iter().sum();
        // Heavy tail: top 1% of vertices should hold well above 1% of edges.
        assert!(
            top1pct as f64 > 0.08 * total as f64,
            "top 1% holds {} of {} edges",
            top1pct,
            total
        );
        // And some vertices should be isolated or near-isolated (skew).
        assert!(degs.last().copied().unwrap() <= 1);
    }

    #[test]
    fn web_params_are_more_skewed_than_social() {
        // Higher `a` concentrates edges into a smaller vertex core, leaving
        // more of the id space untouched — a robust skew indicator.
        let gs = rmat(RmatParams::social(11, 8), 5);
        let gw = rmat(RmatParams::web(11, 8), 5);
        let iso = |g: &Csr| (0..g.num_vertices() as u32).filter(|&v| g.degree(v) == 0).count();
        let (is, iw) = (iso(&gs), iso(&gw));
        assert!(iw > is, "web isolated {iw} vs social {is}");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        let p = RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5, scale: 4, edge_factor: 2, noise: 0.0 };
        rmat(p, 0);
    }
}

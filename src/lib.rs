//! # multilogvc — facade crate
//!
//! Re-exports the public API of the MultiLogVC reproduction (Matam, Hashemi,
//! Annavaram — "MultiLogVC: Efficient Out-of-Core Graph Processing Framework
//! for Flash Storage", IPDPS 2021): the SSD simulator substrate, graph
//! storage, the multi-log engine, the vertex-centric applications, and the
//! GraphChi / GraFBoost baseline engines.
//!
//! Quick start:
//!
//! ```
//! use multilogvc::prelude::*;
//!
//! // A small power-law graph, a simulated SSD, and the MultiLogVC engine.
//! let graph = mlvc_gen::rmat(RmatParams::social(10, 8), 42);
//! let ssd = std::sync::Arc::new(Ssd::new(SsdConfig::default()));
//! let stored = StoredGraph::store(&ssd, &graph, "demo").unwrap();
//! let mut engine = MultiLogEngine::new(ssd, stored, EngineConfig::default());
//! let report = engine.run(&Bfs::new(0), 15);
//! assert!(report.supersteps.len() >= 1);
//! ```

pub use mlvc_apps as apps;
pub use mlvc_core as core;
pub use mlvc_gen as gen;
pub use mlvc_grafboost as grafboost;
pub use mlvc_graph as graph;
pub use mlvc_io as io;
pub use mlvc_graphchi as graphchi;
pub use mlvc_log as log;
pub use mlvc_mutate as mutate;
pub use mlvc_obs as obs;
pub use mlvc_par as par;
pub use mlvc_recover as recover;
pub use mlvc_serve as serve;
pub use mlvc_ssd as ssd;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use mlvc_apps::{Bfs, Cdlp, Coloring, Mis, PageRank, RandomWalk, Sssp, Wcc};
    pub use mlvc_core::{Engine, EngineConfig, MultiLogEngine, RunReport, VertexProgram};
    pub use mlvc_gen::{self, RmatParams};
    pub use mlvc_grafboost::GrafBoostEngine;
    pub use mlvc_graph::{Csr, StoredGraph, VertexId};
    pub use mlvc_graphchi::GraphChiEngine;
    pub use mlvc_mutate::{EdgeMutation, MutationConfig, MutationLog, MutationOp};
    pub use mlvc_ssd::{Ssd, SsdConfig};
}

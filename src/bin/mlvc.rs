//! `mlvc` — command-line front end for the MultiLogVC framework.
//!
//! ```text
//! mlvc gen   --kind rmat-social --scale 14 --seed 42 --out graph.csr
//! mlvc stats graph.csr
//! mlvc convert graph.txt graph.csr
//! mlvc run   --app pagerank --graph graph.csr --engine mlvc --steps 15
//! # crash-consistent checkpointing + recovery (DESIGN.md §11):
//! mlvc run    --app pagerank --graph graph.csr --ssd-dir /tmp/dev \
//!             --checkpoint-every 2 --crash-after 500
//! mlvc resume --app pagerank --graph graph.csr --ssd-dir /tmp/dev
//! ```
//!
//! Graph files: `.csr` = mlvc binary snapshot, anything else = SNAP-style
//! edge-list text (auto-detected by magic on read).

use std::fs::File;
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use multilogvc::apps::{
    Bfs, Cdlp, Coloring, KCore, Mis, PageRank, RandomWalk, Sssp, Wcc,
};
use multilogvc::core::{
    Engine, EngineConfig, MultiLogEngine, ReferenceEngine, RunReport, TieringConfig,
    VertexProgram,
};
use multilogvc::grafboost::GrafBoostEngine;
use multilogvc::graph::{Csr, VertexIntervals};
use multilogvc::graphchi::GraphChiEngine;
use multilogvc::io::{
    read_csr_binary, read_edge_list, write_csr_binary, write_edge_list, EdgeListOptions,
};
use multilogvc::graph::StoredGraph;
use multilogvc::mutate::{EdgeMutation, MutationConfig, MutationLog};
use multilogvc::serve::{Daemon, ServeConfig};
use multilogvc::ssd::{CachePolicy, DeviceError, FaultPlan, Ssd, SsdConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mlvc gen --kind <rmat-social|rmat-web|er|ba> [--scale N] [--vertices N]
           [--edges-per-vertex K] [--seed S] --out <file>
  mlvc stats <graph>
  mlvc convert <in> <out>
  mlvc run --app <bfs|pagerank|cdlp|coloring|mis|randomwalk|wcc|kcore|sssp>
           --graph <file> [--engine mlvc|graphchi|grafboost|reference]
           [--steps N] [--memory-kb K] [--source V] [--seed S] [--async]
           [--ssd-dir DIR] [--checkpoint-every K] [--crash-after N]
           [--metrics FILE] [--cache-kb K] [--pin-budget-kb K]
           [--cache-policy 2q|clock]
  mlvc resume --app <app> --graph <file> --ssd-dir DIR
           [--steps N] [--memory-kb K] [--source V] [--seed S]
           [--checkpoint-every K]
  mlvc serve --graphs <name=file[,name=file...]> [--memory-kb K]
           [--cache-kb K] [--pin-budget-kb K] [--cache-policy 2q|clock]
           [--workers N] [--requests FILE] [--metrics FILE]
           [--ssd-dir DIR]
  mlvc ingest --graph <file> --batch <file> [--out FILE]
           [--app <bfs|pagerank|wcc|...>] [--steps N] [--memory-kb K]
           [--source V] [--seed S] [--ssd-dir DIR]

graph files ending in .csr are binary snapshots; all others are
SNAP-style edge-list text (auto-detected on read).

--ssd-dir backs the simulated SSD with host files so checkpoints survive
the process; --checkpoint-every K writes a crash-consistent checkpoint
every K supersteps; --crash-after N injects a deterministic device crash
(torn page) at the Nth page write. `resume` restarts an interrupted
mlvc-engine run from its last durable checkpoint.

--metrics FILE (mlvc engine only) turns on the observability layer
(DESIGN.md §13): the per-superstep trace is written to FILE as JSON
lines and a Prometheus text snapshot of the run counters to FILE.prom;
the run summary then also reports read/write amplification.

--cache-kb K (mlvc engine only) attaches a K-KiB device page cache
(adaptive memory tiering, DESIGN.md §18); --pin-budget-kb K adds a
pinned tier that holds the hottest intervals' CSR extents resident,
and --cache-policy picks the frame replacement policy (default 2q,
scan-resistant; clock reproduces the plain daemon cache). Cache hit,
eviction, and pin counters flow into the --metrics artifacts.

`ingest` applies an edge-mutation batch to a stored graph through the
on-device mutation log (DESIGN.md §17). The batch file is text, one
mutation per line: `add <src> <dst>` or `remove <src> <dst>` (blank
lines and `#` comments ignored). With --app the base graph is computed
first, then the batch is merged and the app *incrementally
re-converges* from its previous states; without it the batch is merged
directly. --out writes the mutated graph back out as a snapshot.

`serve` starts the multi-tenant daemon (DESIGN.md §15): datasets from
--graphs are stored once on one shared device, then jobs arrive as one
JSON object per line on stdin (or --requests FILE) and replies stream
to stdout. --memory-kb is the global admission budget shared by all
concurrent jobs, --cache-kb sizes the shared page cache, --workers
bounds concurrency. --pin-budget-kb carves DRAM from the admission
budget to hold dataset CSR extents pinned in the cache (DESIGN.md
§18); --cache-policy picks the replacement policy (default 2q).
--metrics FILE writes the daemon-wide Prometheus rollup (per-job
labeled series) on shutdown.";

/// Minimal flag parser: `--key value` pairs plus positionals.
struct Args<'a> {
    flags: Vec<(&'a str, &'a str)>,
    switches: Vec<&'a str>,
    positional: Vec<&'a str>,
}

fn parse_args<'a>(args: &'a [String]) -> Result<Args<'a>, String> {
    let mut out = Args { flags: Vec::new(), switches: Vec::new(), positional: Vec::new() };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            if key == "async" {
                out.switches.push(key);
                i += 1;
            } else {
                let val = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                out.flags.push((key, val.as_str()));
                i += 2;
            }
        } else {
            out.positional.push(a);
            i += 1;
        }
    }
    Ok(out)
}

impl<'a> Args<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.flags.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }
    fn has(&self, switch: &str) -> bool {
        self.switches.contains(&switch)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let rest = parse_args(&args[1..])?;
    match cmd.as_str() {
        "gen" => cmd_gen(&rest),
        "stats" => cmd_stats(&rest),
        "convert" => cmd_convert(&rest),
        "run" => cmd_run(&rest, false),
        "resume" => cmd_run(&rest, true),
        "serve" => cmd_serve(&rest),
        "ingest" => cmd_ingest(&rest),
        other => Err(format!("unknown command: {other}")),
    }
}

// --- graph file handling -------------------------------------------------

fn load_graph(path: &str) -> Result<Csr, String> {
    let mut f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut head = [0u8; 8];
    let n = f.read(&mut head).map_err(|e| e.to_string())?;
    let is_snapshot = n == 8 && &head == multilogvc::io::SNAPSHOT_MAGIC;
    let f = File::open(path).map_err(|e| e.to_string())?;
    if is_snapshot {
        read_csr_binary(f).map_err(|e| format!("{path}: {e}"))
    } else {
        read_edge_list(f, &EdgeListOptions::default()).map_err(|e| format!("{path}: {e}"))
    }
}

fn save_graph(path: &str, g: &Csr) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".csr") {
        write_csr_binary(f, g).map_err(|e| e.to_string())
    } else {
        write_edge_list(f, g).map_err(|e| e.to_string())
    }
}

// --- subcommands ----------------------------------------------------------

fn cmd_gen(a: &Args) -> Result<(), String> {
    let kind = a.get("kind").ok_or("gen needs --kind")?;
    let out = a.get("out").ok_or("gen needs --out")?;
    let seed: u64 = a.get_parsed("seed", 42)?;
    let scale: u32 = a.get_parsed("scale", 14)?;
    let epv: usize = a.get_parsed("edges-per-vertex", 8)?;
    let vertices: usize = a.get_parsed("vertices", 1usize << scale)?;
    let g = match kind {
        "rmat-social" => mlvc_gen::rmat(mlvc_gen::RmatParams::social(scale, epv), seed),
        "rmat-web" => mlvc_gen::rmat(mlvc_gen::RmatParams::web(scale, epv), seed),
        "er" => mlvc_gen::erdos_renyi(vertices, vertices * epv, seed),
        "ba" => mlvc_gen::barabasi_albert(vertices, epv.max(1), seed),
        other => return Err(format!("unknown --kind {other}")),
    };
    save_graph(out, &g)?;
    println!(
        "wrote {out}: {} vertices, {} stored edges",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_stats(a: &Args) -> Result<(), String> {
    let path = a.positional.first().ok_or("stats needs a graph file")?;
    let g = load_graph(path)?;
    let s = mlvc_gen::degree_stats(&g);
    println!("{path}");
    println!("  vertices        {}", s.num_vertices);
    println!("  stored edges    {}", s.num_edges);
    println!("  degree min/med/mean/p99/max  {}/{}/{:.1}/{}/{}",
        s.min_degree, s.median_degree, s.mean_degree, s.p99_degree, s.max_degree);
    println!("  isolated        {}", s.isolated_vertices);
    println!("  top-1% edge share {:.3}", s.top1pct_edge_share);
    println!("  weighted        {}", g.has_weights());
    Ok(())
}

fn cmd_convert(a: &Args) -> Result<(), String> {
    let [input, output] = a.positional.as_slice() else {
        return Err("convert needs <in> <out>".into());
    };
    let g = load_graph(input)?;
    save_graph(output, &g)?;
    println!("{input} -> {output} ({} vertices, {} edges)", g.num_vertices(), g.num_edges());
    Ok(())
}

fn make_app(name: &str, g: &Csr, source: u32) -> Result<Box<dyn VertexProgram>, String> {
    Ok(match name {
        "bfs" => Box::new(Bfs::new(source)),
        "pagerank" => Box::new(PageRank::default()),
        "cdlp" => Box::new(Cdlp),
        "coloring" => Box::new(Coloring::new()),
        "mis" => Box::new(Mis),
        "randomwalk" => Box::new(RandomWalk::default()),
        "wcc" => Box::new(Wcc),
        "kcore" => Box::new(KCore::new()),
        "sssp" => {
            if !g.has_weights() {
                return Err("sssp needs a weighted graph".into());
            }
            Box::new(Sssp::new(source))
        }
        other => return Err(format!("unknown --app {other}")),
    })
}

/// Render a device fault as a CLI error string.
fn dev(e: DeviceError) -> String {
    format!("device error: {e}")
}

/// Device backing the run: host-file-backed under `--ssd-dir` (checkpoints
/// survive the process, enabling `mlvc resume`), in-memory otherwise.
fn make_ssd(a: &Args) -> Result<Arc<Ssd>, String> {
    match a.get("ssd-dir") {
        Some(dir) => Ssd::new_on_disk(SsdConfig::default(), PathBuf::from(dir))
            .map(Arc::new)
            .map_err(|e| format!("--ssd-dir {dir}: {e}")),
        None => Ok(Arc::new(Ssd::new(SsdConfig::default()))),
    }
}

fn cmd_run(a: &Args, resume: bool) -> Result<(), String> {
    let app_name = a.get("app").ok_or("run needs --app")?;
    let path = a.get("graph").ok_or("run needs --graph")?;
    let engine_name = a.get("engine").unwrap_or("mlvc");
    let steps: usize = a.get_parsed("steps", 15)?;
    let memory_kb: usize = a.get_parsed("memory-kb", 2048)?;
    let seed: u64 = a.get_parsed("seed", 42)?;
    let source: u32 = a.get_parsed("source", 0u32)?;
    let checkpoint_every: usize = a.get_parsed("checkpoint-every", 0)?;
    let crash_after: u64 = a.get_parsed("crash-after", 0)?;
    let cache_kb: usize = a.get_parsed("cache-kb", 0)?;
    let pin_budget_kb: usize = a.get_parsed("pin-budget-kb", 0)?;
    let policy = match a.get("cache-policy").unwrap_or("2q") {
        "2q" => CachePolicy::TwoQ,
        "clock" => CachePolicy::Clock,
        other => return Err(format!("unknown --cache-policy {other} (use 2q or clock)")),
    };
    let metrics_path = a.get("metrics");
    if metrics_path.is_some() && engine_name != "mlvc" {
        return Err("--metrics supports only --engine mlvc".into());
    }
    if (cache_kb > 0 || pin_budget_kb > 0) && engine_name != "mlvc" {
        return Err("--cache-kb/--pin-budget-kb support only --engine mlvc".into());
    }
    if pin_budget_kb > 0 && cache_kb == 0 {
        return Err("--pin-budget-kb requires --cache-kb (the pinned tier fills through the cache)".into());
    }
    if resume {
        if engine_name != "mlvc" {
            return Err("resume supports only --engine mlvc".into());
        }
        if a.get("ssd-dir").is_none() {
            return Err("resume needs --ssd-dir (the device holding the checkpoints)".into());
        }
    }

    let g = load_graph(path)?;
    if source as usize >= g.num_vertices() {
        return Err(format!("--source {source} out of range"));
    }
    let app = make_app(app_name, &g, source)?;
    let mut cfg = EngineConfig::default()
        .with_memory(memory_kb << 10)
        .with_seed(seed)
        .with_async(a.has("async"))
        .with_obs(metrics_path.is_some());
    if checkpoint_every > 0 {
        cfg = cfg.with_checkpoint_every(checkpoint_every);
    }
    if cache_kb > 0 {
        cfg = cfg.with_tiering(TieringConfig {
            cache_bytes: cache_kb << 10,
            pin_budget_bytes: pin_budget_kb << 10,
            policy,
        });
    }
    let iv = VertexIntervals::for_graph(&g, 16, cfg.sort_budget());

    println!(
        "{} {app_name} on {path} ({} vertices, {} edges) with {engine_name}, {} KiB budget",
        if resume { "resuming" } else { "running" },
        g.num_vertices(),
        g.num_edges(),
        memory_kb
    );
    let report: RunReport = match engine_name {
        "mlvc" => {
            let ssd = make_ssd(a)?;
            let sg = StoredGraph::store_with(&ssd, &g, "cli", iv).map_err(dev)?;
            if crash_after > 0 {
                ssd.install_fault_plan(FaultPlan::crash_after(crash_after, seed));
            }
            ssd.stats().reset();
            let mut e = MultiLogEngine::new(ssd, sg, cfg);
            let r = if resume {
                e.run_recoverable(app.as_ref(), steps)
            } else {
                e.run(app.as_ref(), steps)
            };
            print_states_summary(app_name, e.states());
            r
        }
        "graphchi" => {
            let ssd = make_ssd(a)?;
            let mut e = GraphChiEngine::new(Arc::clone(&ssd), &g, iv, cfg).map_err(dev)?;
            if crash_after > 0 {
                ssd.install_fault_plan(FaultPlan::crash_after(crash_after, seed));
            }
            ssd.stats().reset();
            let r = e.run(app.as_ref(), steps);
            print_states_summary(app_name, e.states());
            r
        }
        "grafboost" => {
            let ssd = make_ssd(a)?;
            let sg = StoredGraph::store_with(&ssd, &g, "cli", iv).map_err(dev)?;
            if crash_after > 0 {
                ssd.install_fault_plan(FaultPlan::crash_after(crash_after, seed));
            }
            ssd.stats().reset();
            let mut e = GrafBoostEngine::new(ssd, sg, cfg);
            let r = e.run(app.as_ref(), steps);
            print_states_summary(app_name, e.states());
            r
        }
        "reference" => {
            let mut e = ReferenceEngine::new(g.clone(), seed);
            let r = e.run(app.as_ref(), steps);
            print_states_summary(app_name, e.states());
            r
        }
        other => return Err(format!("unknown --engine {other}")),
    };

    println!("\nsuperstep | active | msgs in | pages R | pages W | sim ms");
    for s in &report.supersteps {
        println!(
            "{:9} | {:6} | {:7} | {:7} | {:7} | {:6.2}{}",
            s.superstep,
            s.active_vertices,
            s.messages_processed,
            s.io.pages_read,
            s.io.pages_written,
            s.sim_time_ns() as f64 / 1e6,
            if s.checkpointed { "  ckpt" } else { "" }
        );
    }
    if let Some(from) = report.resumed_from {
        println!("\nresumed from the checkpoint at superstep {from}");
    }
    if let Some(path) = metrics_path {
        write_metrics(path, &report)?;
    }
    println!(
        "\nconverged: {}; total {:.2} ms simulated ({:.0}% storage)",
        report.converged,
        report.total_sim_time_ns() as f64 / 1e6,
        100.0 * report.storage_fraction()
    );
    if let Some(e) = &report.interrupted {
        println!("run interrupted: {e}");
        if a.get("ssd-dir").is_some() {
            println!(
                "recover with: mlvc resume --app {app_name} --graph {path} --ssd-dir {}",
                a.get("ssd-dir").unwrap_or("<dir>")
            );
        }
    }
    Ok(())
}

/// Emit the observability artifacts of a run: the per-superstep trace as
/// JSON lines at `path` and a Prometheus text snapshot at `path.prom`,
/// plus the amplification summary on stdout (DESIGN.md §13).
fn write_metrics(path: &str, report: &RunReport) -> Result<(), String> {
    std::fs::write(path, report.trace_jsonl()).map_err(|e| format!("{path}: {e}"))?;
    let prom = format!("{path}.prom");
    std::fs::write(&prom, report.prometheus_text()).map_err(|e| format!("{prom}: {e}"))?;
    let amp = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.3}"));
    println!(
        "metrics: {} trace records -> {path}, registry -> {prom}",
        report.metrics().len()
    );
    println!(
        "read amplification {}; flash write amplification {}",
        amp(report.read_amplification()),
        amp(report.write_amplification())
    );
    Ok(())
}

/// `mlvc serve`: long-running multi-tenant daemon (DESIGN.md §15). Stores
/// the `--graphs` datasets once on one shared device, then executes jobs
/// arriving as JSON lines (stdin or `--requests FILE`) on a bounded
/// worker pool behind admission control and a shared page cache. Reply
/// events stream to stdout, one JSON object per line.
fn cmd_serve(a: &Args) -> Result<(), String> {
    let specs = a.get("graphs").ok_or("serve needs --graphs name=file[,name=file...]")?;
    let memory_kb: usize = a.get_parsed("memory-kb", 65536)?;
    let cache_kb: usize = a.get_parsed("cache-kb", 8192)?;
    let pin_budget_kb: usize = a.get_parsed("pin-budget-kb", 0)?;
    let workers: usize = a.get_parsed("workers", 4)?;
    let cache_policy = match a.get("cache-policy").unwrap_or("2q") {
        "2q" => CachePolicy::TwoQ,
        "clock" => CachePolicy::Clock,
        other => return Err(format!("unknown --cache-policy {other} (use 2q or clock)")),
    };

    let ssd = make_ssd(a)?;
    let cache_pages = ((cache_kb << 10) / ssd.page_size()).max(1);
    let cfg = ServeConfig {
        memory_budget: memory_kb << 10,
        cache_pages,
        workers,
        pin_budget_bytes: pin_budget_kb << 10,
        cache_policy,
    };
    let mut daemon = Daemon::with_device(cfg, Arc::clone(&ssd));
    for spec in specs.split(',') {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --graphs entry {spec:?} (want name=file)"))?;
        let g = load_graph(path)?;
        eprintln!(
            "serve: dataset {name} <- {path} ({} vertices, {} edges)",
            g.num_vertices(),
            g.num_edges()
        );
        daemon.add_dataset(name, &g).map_err(dev)?;
    }
    eprintln!(
        "serve: {} KiB budget, {cache_pages}-page shared cache, {workers} workers; \
         one JSON request per line",
        memory_kb
    );

    let served = match a.get("requests") {
        Some(path) => {
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            daemon.serve(std::io::BufReader::new(f), std::io::stdout())
        }
        None => daemon.serve(std::io::stdin().lock(), std::io::stdout()),
    };
    served.map_err(|e| format!("serve transport: {e}"))?;

    if let Some(path) = a.get("metrics") {
        std::fs::write(path, daemon.prometheus_rollup())
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("serve: metrics rollup -> {path}");
    }
    Ok(())
}

/// Parse a text mutation batch: one `add <src> <dst>` or
/// `remove <src> <dst>` per line, blank lines and `#` comments ignored.
fn load_batch(path: &str) -> Result<Vec<EdgeMutation>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| format!("{path}:{}: {what}: {raw:?}", i + 1);
        let mut it = line.split_whitespace();
        let op = it.next().ok_or_else(|| bad("missing op"))?;
        let src: u32 =
            it.next().ok_or_else(|| bad("missing src"))?.parse().map_err(|_| bad("bad src"))?;
        let dst: u32 =
            it.next().ok_or_else(|| bad("missing dst"))?.parse().map_err(|_| bad("bad dst"))?;
        if it.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        out.push(match op {
            "add" => EdgeMutation::add(src, dst),
            "remove" | "rm" => EdgeMutation::remove(src, dst),
            _ => return Err(bad("op must be add or remove")),
        });
    }
    Ok(out)
}

/// `mlvc ingest`: apply an edge-mutation batch to a stored graph through
/// the on-device mutation log (DESIGN.md §17). With `--app` the base
/// graph is solved first and the app incrementally re-converges after
/// the merge; without it the batch is merged directly.
fn cmd_ingest(a: &Args) -> Result<(), String> {
    let path = a.get("graph").ok_or("ingest needs --graph")?;
    let batch_path = a.get("batch").ok_or("ingest needs --batch")?;
    let steps: usize = a.get_parsed("steps", 50)?;
    let memory_kb: usize = a.get_parsed("memory-kb", 2048)?;
    let seed: u64 = a.get_parsed("seed", 42)?;
    let source: u32 = a.get_parsed("source", 0u32)?;

    let g = load_graph(path)?;
    if g.has_weights() {
        return Err("ingest supports only unweighted graphs".into());
    }
    let batch = load_batch(batch_path)?;
    if let Some(&m) = batch.iter().find(|m| {
        m.src as usize >= g.num_vertices() || m.dst as usize >= g.num_vertices()
    }) {
        return Err(format!(
            "batch vertex out of range: ({}, {}) on {} vertices",
            m.src,
            m.dst,
            g.num_vertices()
        ));
    }

    let cfg = EngineConfig::default().with_memory(memory_kb << 10).with_seed(seed);
    let iv = VertexIntervals::for_graph(&g, 16, cfg.sort_budget());
    let ssd = make_ssd(a)?;
    let sg = StoredGraph::store_with(&ssd, &g, "cli", iv.clone()).map_err(dev)?;
    let mut mlog = MutationLog::new(Arc::clone(&ssd), iv, MutationConfig::default(), "cli")
        .map_err(|e| format!("mutation log: {e}"))?;
    println!(
        "ingesting {} mutations from {batch_path} into {path} ({} vertices, {} edges)",
        batch.len(),
        g.num_vertices(),
        g.num_edges()
    );
    let ing = mlog.ingest(&batch).map_err(|e| format!("ingest: {e}"))?;
    println!("accepted {} ({} deduped in-batch)", ing.accepted, ing.deduped);

    let outcome = match a.get("app") {
        None => mlog.merge(&sg, cfg.queue_depth).map_err(|e| format!("merge: {e}"))?,
        Some(app_name) => {
            // Solve the base graph, then merge the pending batch and
            // incrementally re-converge from the previous states.
            let app = make_app(app_name, &g, source)?;
            let mut eng =
                MultiLogEngine::new(Arc::clone(&ssd), sg.with_device(Arc::clone(&ssd)), cfg.clone());
            let base = eng.run(app.as_ref(), steps);
            println!(
                "base run: {} supersteps, converged {}",
                base.supersteps.len(),
                base.converged
            );
            eng.attach_mutations(Arc::new(multilogvc::ssd::sync::Mutex::new(mlog)))
                .map_err(dev)?;
            let inc = eng.reconverge(app.as_ref(), steps);
            let stats = inc.mutations.unwrap_or_default();
            println!(
                "re-converged in {} supersteps (cold run above took {})",
                inc.supersteps.len(),
                base.supersteps.len()
            );
            print_states_summary(app_name, eng.states());
            multilogvc::mutate::MergeOutcome { delta: Default::default(), stats }
        }
    };
    println!(
        "merge: +{} -{} edges, {} intervals rewritten, {} dirty vertices",
        outcome.stats.edges_added,
        outcome.stats.edges_removed,
        outcome.stats.intervals_merged,
        outcome.stats.dirty_vertices
    );

    if let Some(out) = a.get("out") {
        let mutated = sg.to_csr().map_err(dev)?;
        save_graph(out, &mutated)?;
        println!("wrote {out}: {} vertices, {} stored edges", mutated.num_vertices(), mutated.num_edges());
    }
    Ok(())
}

fn print_states_summary(app: &str, states: &[u64]) {
    match app {
        "bfs" => {
            let reached = states.iter().filter(|&&s| Bfs::level(s).is_some()).count();
            let depth = states.iter().filter_map(|&s| Bfs::level(s)).max().unwrap_or(0);
            println!("reached {reached} vertices, max level {depth}");
        }
        "pagerank" => {
            let top = states
                .iter()
                .enumerate()
                .max_by(|a, b| PageRank::rank(*a.1).total_cmp(&PageRank::rank(*b.1)))
                .map(|(v, &s)| (v, PageRank::rank(s)));
            if let Some((v, r)) = top {
                println!("top rank: vertex {v} at {r:.4}");
            }
        }
        "wcc" | "cdlp" => {
            let mut labels: Vec<u64> = states.to_vec();
            labels.sort_unstable();
            labels.dedup();
            println!("{} distinct labels", labels.len());
        }
        "coloring" => {
            let max = states.iter().map(|&s| Coloring::color(s)).max().unwrap_or(0);
            println!("colors used: {}", max + 1);
        }
        "mis" => {
            let k = states
                .iter()
                .filter(|&&s| Mis::state(s) == multilogvc::apps::MisState::InSet)
                .count();
            println!("independent set size: {k}");
        }
        "kcore" => {
            let max = states.iter().map(|&s| KCore::coreness(s)).max().unwrap_or(0);
            println!("max coreness: {max}");
        }
        "randomwalk" => {
            println!("total visits: {}", states.iter().sum::<u64>());
        }
        "sssp" => {
            let reached = states.iter().filter(|&&s| Sssp::distance(s).is_some()).count();
            println!("reached {reached} vertices");
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_handles_flags_switches_positionals() {
        let raw = strs(&["--app", "bfs", "in.txt", "--async", "--steps", "9", "out.csr"]);
        let a = parse_args(&raw).unwrap();
        assert_eq!(a.get("app"), Some("bfs"));
        assert_eq!(a.get_parsed("steps", 0usize).unwrap(), 9);
        assert!(a.has("async"));
        assert_eq!(a.positional, vec!["in.txt", "out.csr"]);
        assert_eq!(a.get_parsed("memory-kb", 7usize).unwrap(), 7, "default");
    }

    #[test]
    fn parser_rejects_dangling_flag_and_bad_values() {
        assert!(parse_args(&strs(&["--app"])).is_err());
        let raw = strs(&["--steps", "abc"]);
        let a = parse_args(&raw).unwrap();
        assert!(a.get_parsed("steps", 0usize).is_err());
    }

    #[test]
    fn gen_stats_convert_run_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mlvc-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let txt = dir.join("g.txt");
        let csr_s = csr.to_str().unwrap();
        let txt_s = txt.to_str().unwrap();

        run(&strs(&["gen", "--kind", "rmat-social", "--scale", "8", "--out", csr_s])).unwrap();
        run(&strs(&["stats", csr_s])).unwrap();
        run(&strs(&["convert", csr_s, txt_s])).unwrap();
        // Text and binary load to the same graph.
        let a = load_graph(csr_s).unwrap();
        let b = read_edge_list(
            File::open(&txt) .unwrap(),
            &EdgeListOptions {
                symmetrize: false,
                dedup: false,
                drop_self_loops: false,
                num_vertices: Some(a.num_vertices()),
            },
        )
        .unwrap();
        assert_eq!(a, b);

        for engine in ["mlvc", "graphchi", "grafboost", "reference"] {
            run(&strs(&[
                "run", "--app", "wcc", "--graph", csr_s, "--engine", engine, "--steps", "50",
            ]))
            .unwrap();
        }
        run(&strs(&[
            "run", "--app", "bfs", "--graph", csr_s, "--engine", "mlvc", "--async", "--steps",
            "50",
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn metrics_flag_writes_trace_and_prometheus() {
        let dir = std::env::temp_dir().join(format!("mlvc-cli-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let csr_s = csr.to_str().unwrap();
        let metrics = dir.join("metrics.jsonl");
        let metrics_s = metrics.to_str().unwrap();

        run(&strs(&["gen", "--kind", "rmat-social", "--scale", "8", "--out", csr_s])).unwrap();
        run(&strs(&[
            "run", "--app", "pagerank", "--graph", csr_s, "--steps", "5",
            "--metrics", metrics_s,
        ]))
        .unwrap();

        // The trace is valid JSONL with the paper's I/O accounting fields.
        let text = std::fs::read_to_string(&metrics).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "seed phase + at least one superstep");
        for line in &lines {
            let v = multilogvc::obs::json::parse(line).unwrap();
            for field in multilogvc::obs::TRACE_FIELDS {
                assert!(v.get(field).is_some(), "missing {field}");
            }
            assert!(v.get("read_amplification").is_some());
        }
        // Some superstep read pages and appended log bytes.
        let total = |f: &str| -> f64 {
            lines.iter().map(|l| {
                multilogvc::obs::json::parse(l).unwrap().get(f).and_then(|x| x.as_num()).unwrap()
            }).sum()
        };
        assert!(total("pages_read") > 0.0);
        assert!(total("log_bytes_appended") > 0.0);

        // The Prometheus snapshot exists and exposes the device counters.
        let prom = std::fs::read_to_string(format!("{metrics_s}.prom")).unwrap();
        assert!(prom.contains("# TYPE mlvc_ssd_pages_read_total counter"));
        assert!(prom.contains("mlvc_log_bytes_appended_total"));

        // --metrics is refused on non-mlvc engines.
        assert!(run(&strs(&[
            "run", "--app", "pagerank", "--graph", csr_s, "--engine", "graphchi",
            "--metrics", metrics_s,
        ]))
        .is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_then_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("mlvc-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let csr_s = csr.to_str().unwrap();
        let dev = dir.join("dev");
        let dev_s = dev.to_str().unwrap();

        run(&strs(&["gen", "--kind", "rmat-social", "--scale", "7", "--out", csr_s])).unwrap();
        // Checkpointed run that crashes partway through.
        run(&strs(&[
            "run", "--app", "pagerank", "--graph", csr_s, "--ssd-dir", dev_s,
            "--checkpoint-every", "2", "--crash-after", "400", "--steps", "10",
        ]))
        .unwrap();
        // Resume from the last durable checkpoint on the same device.
        run(&strs(&[
            "resume", "--app", "pagerank", "--graph", csr_s, "--ssd-dir", dev_s,
            "--steps", "10",
        ]))
        .unwrap();
        // resume demands mlvc + --ssd-dir.
        assert!(run(&strs(&[
            "resume", "--app", "pagerank", "--graph", csr_s, "--ssd-dir", dev_s,
            "--engine", "graphchi",
        ]))
        .is_err());
        assert!(run(&strs(&["resume", "--app", "pagerank", "--graph", csr_s])).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_subcommand_runs_a_request_file_session() {
        let dir = std::env::temp_dir().join(format!("mlvc-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let csr_s = csr.to_str().unwrap();
        run(&strs(&["gen", "--kind", "rmat-social", "--scale", "7", "--out", csr_s])).unwrap();

        let reqs = dir.join("session.jsonl");
        let reqs_s = reqs.to_str().unwrap();
        std::fs::write(
            &reqs,
            "{\"op\":\"run\",\"id\":\"s1\",\"app\":\"bfs\",\"dataset\":\"g\",\"memory_kb\":1024,\"steps\":8}\n\
             {\"op\":\"run\",\"id\":\"s2\",\"app\":\"wcc\",\"dataset\":\"g\",\"memory_kb\":1024,\"steps\":8}\n\
             {\"op\":\"run\",\"id\":\"s3\",\"app\":\"bfs\",\"dataset\":\"missing\"}\n\
             {\"op\":\"shutdown\"}\n",
        )
        .unwrap();
        let metrics = dir.join("serve.prom");
        let metrics_s = metrics.to_str().unwrap();

        run(&strs(&[
            "serve", "--graphs", &format!("g={csr_s}"), "--memory-kb", "16384",
            "--workers", "2", "--requests", reqs_s, "--metrics", metrics_s,
        ]))
        .unwrap();

        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("mlvc_serve_device_pages_read_total"));
        assert!(prom.contains("job=\"s1\""));
        assert!(prom.contains("job=\"s2\""));
        assert!(!prom.contains("job=\"s3\""), "rejected jobs never ran");

        // Bad --graphs spec and missing --graphs both error cleanly.
        assert!(run(&strs(&["serve", "--graphs", "nonsense"])).is_err());
        assert!(run(&strs(&["serve", "--requests", reqs_s])).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ingest_applies_a_batch_and_reconverges() {
        let dir = std::env::temp_dir().join(format!("mlvc-cli-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let csr = dir.join("g.csr");
        let csr_s = csr.to_str().unwrap();
        let out = dir.join("mutated.csr");
        let out_s = out.to_str().unwrap();
        let batch = dir.join("batch.txt");
        let batch_s = batch.to_str().unwrap();

        run(&strs(&["gen", "--kind", "rmat-social", "--scale", "7", "--out", csr_s])).unwrap();
        let before = load_graph(csr_s).unwrap();
        std::fs::write(
            &batch,
            "# connect 1 -> 2 both ways, drop an existing edge\n\
             add 1 2\nadd 2 1\nadd 1 2\n\nremove 0 1\n",
        )
        .unwrap();

        // Direct merge (no app) writes the mutated snapshot.
        run(&strs(&[
            "ingest", "--graph", csr_s, "--batch", batch_s, "--out", out_s,
        ]))
        .unwrap();
        let got = load_graph(out_s).unwrap();
        let (expect, delta) = multilogvc::mutate::apply_to_csr(
            &before,
            &[
                EdgeMutation::add(1, 2),
                EdgeMutation::add(2, 1),
                EdgeMutation::remove(0, 1),
            ],
        )
        .unwrap();
        assert_eq!(got, expect, "on-device merge matches the in-memory golden path");
        assert!(!delta.is_empty() || before == expect);

        // Incremental re-convergence path.
        run(&strs(&[
            "ingest", "--graph", csr_s, "--batch", batch_s, "--app", "wcc", "--steps", "50",
        ]))
        .unwrap();

        // Malformed batches error with the offending line.
        std::fs::write(&batch, "add 1\n").unwrap();
        assert!(run(&strs(&["ingest", "--graph", csr_s, "--batch", batch_s])).is_err());
        std::fs::write(&batch, "frob 1 2\n").unwrap();
        assert!(run(&strs(&["ingest", "--graph", csr_s, "--batch", batch_s])).is_err());
        std::fs::write(&batch, "add 1 999999\n").unwrap();
        assert!(run(&strs(&["ingest", "--graph", csr_s, "--batch", batch_s])).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unknown_commands_and_apps_error_cleanly() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&[])).is_err());
        let g = mlvc_gen::path(4);
        assert!(make_app("nope", &g, 0).is_err());
        assert!(make_app("sssp", &g, 0).is_err(), "unweighted graph rejected");
    }
}

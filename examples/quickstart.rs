//! Quickstart: store a power-law graph on the simulated SSD, run BFS on
//! the MultiLogVC engine, and inspect results and I/O statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use multilogvc::prelude::*;

fn main() {
    // 1. A synthetic social graph (stand-in for the paper's com-friendster).
    let graph = mlvc_gen::rmat(RmatParams::social(14, 16), 42);
    println!(
        "graph: {} vertices, {} stored edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. A simulated SSD (16 KiB pages, 4 channels, SATA-class timing) and
    //    the graph laid out on it as interval-partitioned CSR.
    let ssd = Arc::new(Ssd::new(SsdConfig::default()));
    let stored = StoredGraph::store(&ssd, &graph, "quickstart").expect("fresh device");
    println!(
        "stored as {} vertex intervals",
        stored.intervals().num_intervals()
    );
    ssd.stats().reset(); // don't count setup I/O in the run stats

    // 3. Run BFS from the highest-degree vertex.
    let source = (0..graph.num_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let mut engine = MultiLogEngine::new(Arc::clone(&ssd), stored, EngineConfig::default());
    let report = engine.run(&Bfs::new(source), 50);

    // 4. Results.
    let reached = engine
        .states()
        .iter()
        .filter(|&&s| Bfs::level(s).is_some())
        .count();
    let max_level = engine
        .states()
        .iter()
        .filter_map(|&s| Bfs::level(s))
        .max()
        .unwrap();
    println!(
        "bfs from {source}: reached {reached} vertices, max level {max_level}, \
         converged = {}",
        report.converged
    );

    // 5. Statistics — the currency of the paper's evaluation.
    println!("\nsuperstep | active | msgs in | pages R | pages W | sim ms");
    for s in &report.supersteps {
        println!(
            "{:9} | {:6} | {:7} | {:7} | {:7} | {:6.2}",
            s.superstep,
            s.active_vertices,
            s.messages_processed,
            s.io.pages_read,
            s.io.pages_written,
            s.sim_time_ns() as f64 / 1e6
        );
    }
    println!(
        "\ntotal simulated time {:.2} ms ({:.0}% storage)",
        report.total_sim_time_ns() as f64 / 1e6,
        100.0 * report.storage_fraction()
    );
    if let Some(el) = report.edgelog {
        println!(
            "edge log: {} vertices staged, {} served from log",
            el.vertices_logged, el.hits
        );
    }
}

//! PageRank on a web-style graph with the paper's delta-threshold
//! activation — watch the active set shrink superstep over superstep,
//! which is precisely the dynamic MultiLogVC's selective loading exploits.
//!
//! ```sh
//! cargo run --release --example web_ranking
//! ```

use std::sync::Arc;

use multilogvc::prelude::*;

fn main() {
    // The YWS stand-in: sparser, more skewed, web-like.
    let dataset = mlvc_gen::yws_mini(14, 7);
    let graph = dataset.graph;
    println!(
        "{} ({}): {} vertices, {} stored edges",
        dataset.name,
        dataset.stands_for,
        graph.num_vertices(),
        graph.num_edges()
    );

    let ssd = Arc::new(Ssd::new(SsdConfig::default()));
    let stored = StoredGraph::store(&ssd, &graph, "web").expect("fresh device");
    ssd.stats().reset();
    let mut engine = MultiLogEngine::new(ssd, stored, EngineConfig::default());

    // Paper §VII: delta-activation threshold 0.4, 15 supersteps max.
    let pr = PageRank::new(0.85, 0.05);
    let report = engine.run(&pr, 15);

    println!("\nsuperstep | active vertices | messages sent");
    for s in &report.supersteps {
        println!(
            "{:9} | {:15} | {:13}",
            s.superstep, s.active_vertices, s.messages_sent
        );
    }

    // Top-ranked pages.
    let mut ranked: Vec<(u32, f64)> = engine
        .states()
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, PageRank::rank(s)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop pages by rank:");
    for (v, r) in ranked.iter().take(10) {
        println!("  vertex {v:>8}  rank {r:.4}  degree {}", graph.degree(*v));
    }

    println!(
        "\n{:.2} ms simulated, {:.0}% storage time",
        report.total_sim_time_ns() as f64 / 1e6,
        100.0 * report.storage_fraction()
    );
}

//! DrunkardMob-style random walks for neighborhood estimation (the
//! recommendation workload motivating the paper's RW application, §VII) —
//! run with the **disk-backed** SSD so the pages genuinely live on the
//! host filesystem.
//!
//! ```sh
//! cargo run --release --example walk_recommend
//! ```

use std::sync::Arc;

use multilogvc::core::Engine;
use multilogvc::prelude::*;

fn main() {
    let graph = mlvc_gen::barabasi_albert(20_000, 4, 3);
    println!(
        "BA graph: {} vertices, {} stored edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Disk-backed simulated SSD: every page lives in a real file.
    let dir = std::env::temp_dir().join("mlvc-walks");
    let ssd = Arc::new(
        Ssd::new_on_disk(SsdConfig::default(), dir.clone()).expect("disk backend"),
    );
    let stored = StoredGraph::store(&ssd, &graph, "walks").expect("fresh device");
    ssd.stats().reset();
    let mut engine = MultiLogEngine::new(Arc::clone(&ssd), stored, EngineConfig::default());

    // Paper parameters: every 1000th vertex is a source, walks of ≤10 steps.
    let rw = RandomWalk::new(1000, 8, 10);
    let report = engine.run(&rw, 12);
    assert!(report.converged, "all walks exhaust their budget within 11 steps");

    let visits: Vec<u64> = engine.states().to_vec();
    let total: u64 = visits.iter().sum();
    println!(
        "walks done: {} visits recorded across {} supersteps",
        total,
        report.supersteps.len()
    );

    // "Recommend" the most-visited non-source vertices.
    let mut hot: Vec<(u32, u64)> = visits
        .iter()
        .enumerate()
        .filter(|(v, _)| v % 1000 != 0)
        .map(|(v, &c)| (v as u32, c))
        .collect();
    hot.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nmost-visited vertices (walk-based recommendations):");
    for (v, c) in hot.iter().take(10) {
        println!("  vertex {v:>6}: {c} visits (degree {})", graph.degree(*v));
    }

    println!(
        "\nI/O: {} pages read, {} written, on-disk at {}",
        report.total_pages_read(),
        report.total_pages_written(),
        dir.display()
    );
    let _ = std::fs::remove_dir_all(dir);
}

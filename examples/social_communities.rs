//! Community detection on a social network with planted structure — the
//! CDLP workload of the paper (§VII), which *requires* individually
//! preserved messages and therefore cannot run on merge-based systems.
//!
//! Runs the same program on MultiLogVC and the GraphChi baseline, checks
//! the engines agree, scores recovery of the planted communities, and
//! compares the page traffic of the two engines.
//!
//! ```sh
//! cargo run --release --example social_communities
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use multilogvc::core::Engine;
use multilogvc::prelude::*;

fn main() {
    // A 4-community stochastic block model.
    let params = mlvc_gen::SbmParams {
        n: 4000,
        communities: 4,
        intra_degree: 14.0,
        inter_degree: 1.0,
    };
    let graph = mlvc_gen::sbm(params, 9);
    println!(
        "SBM: {} vertices, {} stored edges, 4 planted communities",
        graph.num_vertices(),
        graph.num_edges()
    );

    let intervals =
        multilogvc::graph::VertexIntervals::for_graph(&graph, 16, 256 << 10);

    // MultiLogVC.
    let ssd_m = Arc::new(Ssd::new(SsdConfig::default()));
    let sg = StoredGraph::store_with(&ssd_m, &graph, "sbm", intervals.clone())
        .expect("fresh device");
    ssd_m.stats().reset();
    let mut mlvc = MultiLogEngine::new(ssd_m, sg, EngineConfig::default());
    let rm = mlvc.run(&Cdlp, 15);

    // GraphChi baseline.
    let ssd_g = Arc::new(Ssd::new(SsdConfig::default()));
    let mut gchi = GraphChiEngine::new(ssd_g, &graph, intervals, EngineConfig::default())
        .expect("fresh device");
    let rg = gchi.run(&Cdlp, 15);

    assert_eq!(mlvc.states(), gchi.states(), "engines must agree exactly");

    // Score: within each planted block, how dominant is the top label?
    let block = params.n / params.communities;
    println!("\nplanted block -> dominant detected label coverage");
    for b in 0..params.communities {
        let mut freq: HashMap<u64, usize> = HashMap::new();
        for v in b * block..(b + 1) * block {
            *freq.entry(mlvc.states()[v]).or_insert(0) += 1;
        }
        let (label, count) = freq.into_iter().max_by_key(|&(_, c)| c).unwrap();
        println!(
            "  block {b}: label {label} covers {count}/{block} ({:.0}%)",
            100.0 * count as f64 / block as f64
        );
    }

    println!(
        "\nI/O: MultiLogVC {} pages, GraphChi {} pages ({:.2}x), \
         sim-time speedup {:.2}x",
        rm.total_pages(),
        rg.total_pages(),
        rg.total_pages() as f64 / rm.total_pages().max(1) as f64,
        rm.speedup_over(&rg)
    );
    println!(
        "activity: superstep 1 processed {} vertices; superstep {} processed {}",
        rm.supersteps.first().map(|s| s.active_vertices).unwrap_or(0),
        rm.supersteps.len(),
        rm.supersteps.last().map(|s| s.active_vertices).unwrap_or(0),
    );
}

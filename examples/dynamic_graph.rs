//! Graph structural updates (paper §V-E): a program that *mutates* the
//! graph while running — new edges are buffered per vertex interval,
//! visible to the loader immediately, and merged into the on-SSD CSR after
//! a threshold.
//!
//! The scenario: a contact network grows by "introductions" — every vertex
//! that learns of the seed introduces itself to a random neighbor's
//! neighbor (triadic closure), then gossip (min-flood) runs over the
//! *current* graph.
//!
//! ```sh
//! cargo run --release --example dynamic_graph
//! ```

use std::sync::Arc;

use multilogvc::core::{Engine, InitActive, Update, VertexCtx, VertexProgram};
use multilogvc::prelude::*;

/// Phase 1 (supersteps 1–3): gossip spreads from vertex 0; each newly
/// reached vertex adds a triadic-closure edge to a neighbor's announced
/// contact. Phase 2: gossip continues over the augmented graph.
struct GrowAndGossip;

impl VertexProgram for GrowAndGossip {
    fn name(&self) -> &'static str {
        "grow-and-gossip"
    }

    fn init_state(&self, _v: u32) -> u64 {
        u64::MAX // unreached
    }

    fn init_active(&self, _n: usize) -> InitActive {
        InitActive::Seeds(vec![Update::new(0, 0, 0)])
    }

    fn process(&self, ctx: &mut VertexCtx<'_>) {
        if ctx.state() != u64::MAX {
            return;
        }
        let hop = ctx.msgs().iter().map(|m| m.data).min().unwrap();
        ctx.set_state(hop);
        // Triadic closure: introduce myself to the contact of the vertex
        // that reached me (its id rides in the message source), picking a
        // pseudo-random one of my own neighbors to also meet it.
        if hop % 2 == 1 && ctx.degree() > 0 {
            let introducer = ctx.msgs()[0].src;
            let k = (ctx.rand_u64() % ctx.degree() as u64) as usize;
            let friend = ctx.edges()[k];
            if friend != introducer {
                ctx.add_edge(friend); // my new shortcut
            }
        }
        ctx.send_all(hop + 1);
    }
}

fn main() {
    // A sparse ring-of-cliques so shortcuts matter.
    let mut b = multilogvc::graph::EdgeListBuilder::new(4096).symmetrize(true);
    for v in 0..4096u32 {
        b.push(v, (v + 1) % 4096);
        if v % 8 == 0 {
            b.push(v, (v + 17) % 4096);
        }
    }
    let graph = b.build();
    println!(
        "initial graph: {} vertices, {} stored edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let ssd = Arc::new(Ssd::new(SsdConfig::default()));
    let stored = StoredGraph::store(&ssd, &graph, "dyn").expect("fresh device");
    ssd.stats().reset();
    let mut engine = MultiLogEngine::new(Arc::clone(&ssd), stored, EngineConfig::default());
    let report = engine.run(&GrowAndGossip, 4096);
    assert!(report.converged);

    let reached = engine.states().iter().filter(|&&s| s != u64::MAX).count();
    let max_hop = engine.states().iter().filter(|&&s| s != u64::MAX).max().unwrap();
    println!(
        "gossip reached {reached} vertices in {} supersteps (max hop {max_hop})",
        report.supersteps.len()
    );

    // The structural updates really landed in the stored CSR.
    let final_graph = engine.graph().to_csr().expect("read back stored graph");
    println!(
        "final graph: {} stored edges ({} added by triadic closure)",
        final_graph.num_edges(),
        final_graph.num_edges() - graph.num_edges()
    );
    assert!(final_graph.num_edges() > graph.num_edges());
}
